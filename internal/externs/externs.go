// Package externs is the shared signature database for the external
// (libc-like) functions that synthetic firmware programs import.
//
// It is consumed by four subsystems that must agree on calling conventions
// and roles:
//
//   - the assembler (internal/asm) auto-registers imports and validates arity;
//   - the P-Code lifter (internal/pcode) derives CALL inputs/outputs;
//   - executable identification (internal/identify) needs the sets of
//     request-incoming (recv*) and response-outgoing (send*) functions;
//   - the taint engine (internal/taint) attaches dataflow summaries keyed by
//     function name.
//
// This plays the role of the libc function-signature models that real
// binary-analysis frameworks ship.
package externs

// Variadic marks a function whose arity is fixed per callsite rather than
// per signature (e.g. sprintf). The callsite encodes the actual argument
// count.
const Variadic = -1

// Role classifies the part an external function plays in the FIRMRES
// analyses.
type Role uint8

// Function roles.
const (
	RoleNone    Role = iota // no special meaning
	RoleRecv                // request-incoming function (fun_in anchors)
	RoleSend                // response-outgoing function (fun_out anchors)
	RoleDeliver             // device-cloud message delivery (taint source callsites)
	RoleString              // string/formatting helper with a dataflow summary
	RoleJSON                // cJSON-style message assembly
	RoleNVRAM               // NVRAM read (taint sink origin: NVRAM)
	RoleConfig              // configuration-file read (taint sink origin: config)
	RoleEnv                 // environment / front-end input (taint sink origin: env)
	RoleFile                // file I/O (Dev-Secret tracking: Variable=Function(Constant))
	RoleEvent               // event-loop registration (asynchronous handler hookup)
	RoleCrypto              // key derivation / signing helpers
	RoleIPC                 // local inter-process communication (negative anchors)
	RoleMisc                // allocation, time, logging, sockets, ...
)

// Sig describes one external function.
type Sig struct {
	Name      string
	NumParams int // Variadic for printf-style functions
	HasResult bool
	Role      Role
}

// Table lists every external function the corpus may import. Order is
// stable; import indices are assigned per binary by the assembler.
var Table = []Sig{
	// Request-incoming anchors (fun_in).
	{Name: "recv", NumParams: 4, HasResult: true, Role: RoleRecv},
	{Name: "recvfrom", NumParams: 6, HasResult: true, Role: RoleRecv},
	{Name: "recvmsg", NumParams: 3, HasResult: true, Role: RoleRecv},
	{Name: "SSL_read", NumParams: 3, HasResult: true, Role: RoleRecv},
	{Name: "mqtt_recv", NumParams: 2, HasResult: true, Role: RoleRecv},

	// Response-outgoing anchors (fun_out).
	{Name: "send", NumParams: 4, HasResult: true, Role: RoleSend},
	{Name: "sendto", NumParams: 6, HasResult: true, Role: RoleSend},
	{Name: "sendmsg", NumParams: 3, HasResult: true, Role: RoleSend},

	// Device-cloud message delivery (taint sources). The first argument is
	// the connection/handle; the second carries the message buffer, except
	// curl_easy_perform and http_post where noted below in ArgOfMessage.
	{Name: "SSL_write", NumParams: 3, HasResult: true, Role: RoleDeliver},
	{Name: "CyaSSL_write", NumParams: 3, HasResult: true, Role: RoleDeliver},
	{Name: "curl_easy_perform", NumParams: 1, HasResult: true, Role: RoleDeliver},
	{Name: "http_post", NumParams: 3, HasResult: true, Role: RoleDeliver},
	{Name: "mosquitto_publish", NumParams: 4, HasResult: true, Role: RoleDeliver},
	{Name: "mqtt_publish", NumParams: 3, HasResult: true, Role: RoleDeliver},

	// String construction and formatting.
	{Name: "sprintf", NumParams: Variadic, HasResult: true, Role: RoleString},
	{Name: "snprintf", NumParams: Variadic, HasResult: true, Role: RoleString},
	{Name: "strcpy", NumParams: 2, HasResult: true, Role: RoleString},
	{Name: "strncpy", NumParams: 3, HasResult: true, Role: RoleString},
	{Name: "strcat", NumParams: 2, HasResult: true, Role: RoleString},
	{Name: "strncat", NumParams: 3, HasResult: true, Role: RoleString},
	{Name: "memcpy", NumParams: 3, HasResult: true, Role: RoleString},
	{Name: "strdup", NumParams: 1, HasResult: true, Role: RoleString},
	{Name: "strlen", NumParams: 1, HasResult: true, Role: RoleMisc},
	{Name: "strcmp", NumParams: 2, HasResult: true, Role: RoleMisc},
	{Name: "strncmp", NumParams: 3, HasResult: true, Role: RoleMisc},
	{Name: "strstr", NumParams: 2, HasResult: true, Role: RoleMisc},
	{Name: "strchr", NumParams: 2, HasResult: true, Role: RoleMisc},
	{Name: "atoi", NumParams: 1, HasResult: true, Role: RoleString},
	{Name: "itoa", NumParams: 2, HasResult: true, Role: RoleString},
	{Name: "base64_encode", NumParams: 2, HasResult: true, Role: RoleString},
	{Name: "urlencode", NumParams: 1, HasResult: true, Role: RoleString},

	// cJSON-style assembly.
	{Name: "curl_easy_init", NumParams: 0, HasResult: true, Role: RoleString},
	{Name: "curl_setopt", NumParams: 3, HasResult: true, Role: RoleString},

	{Name: "cJSON_CreateObject", NumParams: 0, HasResult: true, Role: RoleJSON},
	{Name: "cJSON_AddStringToObject", NumParams: 3, HasResult: true, Role: RoleJSON},
	{Name: "cJSON_AddNumberToObject", NumParams: 3, HasResult: true, Role: RoleJSON},
	{Name: "cJSON_AddItemToObject", NumParams: 3, HasResult: false, Role: RoleJSON},
	{Name: "cJSON_Print", NumParams: 1, HasResult: true, Role: RoleJSON},
	{Name: "cJSON_PrintUnformatted", NumParams: 1, HasResult: true, Role: RoleJSON},
	{Name: "cJSON_Delete", NumParams: 1, HasResult: false, Role: RoleJSON},

	// Field-source origins (taint sinks).
	{Name: "nvram_get", NumParams: 1, HasResult: true, Role: RoleNVRAM},
	{Name: "nvram_safe_get", NumParams: 1, HasResult: true, Role: RoleNVRAM},
	{Name: "config_read", NumParams: 1, HasResult: true, Role: RoleConfig},
	{Name: "uci_get", NumParams: 1, HasResult: true, Role: RoleConfig},
	{Name: "getenv", NumParams: 1, HasResult: true, Role: RoleEnv},
	{Name: "web_get_param", NumParams: 1, HasResult: true, Role: RoleEnv},

	// File I/O (hard-coded Dev-Secret pattern: Variable = Function(Constant)).
	{Name: "fopen", NumParams: 2, HasResult: true, Role: RoleFile},
	{Name: "fread", NumParams: 4, HasResult: true, Role: RoleFile},
	{Name: "fclose", NumParams: 1, HasResult: false, Role: RoleFile},
	{Name: "read_file", NumParams: 1, HasResult: true, Role: RoleFile},

	// Event-loop / async registration.
	{Name: "event_register", NumParams: 2, HasResult: false, Role: RoleEvent},
	{Name: "uloop_fd_add", NumParams: 2, HasResult: false, Role: RoleEvent},
	{Name: "task_spawn", NumParams: 1, HasResult: false, Role: RoleEvent},

	// Crypto / derivation.
	{Name: "md5", NumParams: 2, HasResult: true, Role: RoleCrypto},
	{Name: "sha256", NumParams: 2, HasResult: true, Role: RoleCrypto},
	{Name: "hmac_sha256", NumParams: 3, HasResult: true, Role: RoleCrypto},
	{Name: "aes_encrypt", NumParams: 3, HasResult: true, Role: RoleCrypto},

	// IPC (negative anchors for handler identification).
	{Name: "ipc_recv", NumParams: 2, HasResult: true, Role: RoleIPC},
	{Name: "ipc_send", NumParams: 2, HasResult: true, Role: RoleIPC},
	{Name: "ubus_invoke", NumParams: 3, HasResult: true, Role: RoleIPC},

	// Miscellaneous runtime.
	{Name: "malloc", NumParams: 1, HasResult: true, Role: RoleMisc},
	{Name: "calloc", NumParams: 2, HasResult: true, Role: RoleMisc},
	{Name: "free", NumParams: 1, HasResult: false, Role: RoleMisc},
	{Name: "printf", NumParams: Variadic, HasResult: true, Role: RoleMisc},
	{Name: "fprintf", NumParams: Variadic, HasResult: true, Role: RoleMisc},
	{Name: "syslog", NumParams: 2, HasResult: false, Role: RoleMisc},
	{Name: "socket", NumParams: 3, HasResult: true, Role: RoleMisc},
	{Name: "connect", NumParams: 3, HasResult: true, Role: RoleMisc},
	{Name: "bind", NumParams: 3, HasResult: true, Role: RoleMisc},
	{Name: "listen", NumParams: 2, HasResult: true, Role: RoleMisc},
	{Name: "accept", NumParams: 3, HasResult: true, Role: RoleMisc},
	{Name: "close", NumParams: 1, HasResult: true, Role: RoleMisc},
	{Name: "select", NumParams: 5, HasResult: true, Role: RoleMisc},
	{Name: "epoll_wait", NumParams: 4, HasResult: true, Role: RoleMisc},
	{Name: "usleep", NumParams: 1, HasResult: false, Role: RoleMisc},
	{Name: "time", NumParams: 1, HasResult: true, Role: RoleMisc},
	{Name: "rand", NumParams: 0, HasResult: true, Role: RoleMisc},
	{Name: "gethostbyname", NumParams: 1, HasResult: true, Role: RoleMisc},
	{Name: "ssl_connect", NumParams: 2, HasResult: true, Role: RoleMisc},
	{Name: "mqtt_connect", NumParams: 3, HasResult: true, Role: RoleMisc},
	{Name: "mqtt_subscribe", NumParams: 2, HasResult: true, Role: RoleMisc},
	{Name: "SSL_new", NumParams: 1, HasResult: true, Role: RoleMisc},
	{Name: "exit", NumParams: 1, HasResult: false, Role: RoleMisc},
}

var byName = func() map[string]Sig {
	m := make(map[string]Sig, len(Table))
	for _, s := range Table {
		m[s.Name] = s
	}
	return m
}()

// Lookup returns the signature for an external function name.
func Lookup(name string) (Sig, bool) {
	s, ok := byName[name]
	return s, ok
}

// ByRole returns the names of all functions with the given role,
// in Table order.
func ByRole(role Role) []string {
	var out []string
	for _, s := range Table {
		if s.Role == role {
			out = append(out, s.Name)
		}
	}
	return out
}

// MessageArg returns the zero-based argument index that carries the outgoing
// device-cloud message for a delivery function, and whether name is a
// delivery function at all. This is the taint-source map of §IV-B.
func MessageArg(name string) (int, bool) {
	switch name {
	case "SSL_write", "CyaSSL_write":
		return 1, true // SSL_write(ssl, buf, len)
	case "http_post":
		return 2, true // http_post(conn, path, body)
	case "curl_easy_perform":
		return 0, true // curl handle aggregates the request
	case "mosquitto_publish":
		return 3, true // mosquitto_publish(mosq, mid, topic, payload)
	case "mqtt_publish":
		return 2, true // mqtt_publish(conn, topic, payload)
	case "send", "sendto", "sendmsg":
		return 1, true // send(fd, buf, len, flags)
	}
	return 0, false
}

// IsRecv reports whether name is a request-incoming anchor function.
func IsRecv(name string) bool {
	s, ok := byName[name]
	return ok && s.Role == RoleRecv
}

// IsSend reports whether name is a response-outgoing anchor function
// (including the richer delivery wrappers, which also emit traffic).
func IsSend(name string) bool {
	s, ok := byName[name]
	return ok && (s.Role == RoleSend || s.Role == RoleDeliver)
}

// IsDeliver reports whether name is a device-cloud message delivery function
// whose callsite arguments are taint sources.
func IsDeliver(name string) bool {
	s, ok := byName[name]
	return ok && s.Role == RoleDeliver
}
