package externs

import "testing"

func TestTableUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Table {
		if seen[s.Name] {
			t.Errorf("duplicate extern %q", s.Name)
		}
		seen[s.Name] = true
		if s.NumParams != Variadic && (s.NumParams < 0 || s.NumParams > 6) {
			t.Errorf("%s: arity %d outside calling convention", s.Name, s.NumParams)
		}
	}
}

func TestLookup(t *testing.T) {
	s, ok := Lookup("sprintf")
	if !ok || s.NumParams != Variadic || !s.HasResult {
		t.Errorf("Lookup(sprintf) = %+v, %v", s, ok)
	}
	if _, ok := Lookup("not_a_function"); ok {
		t.Error("Lookup invented a function")
	}
}

func TestRoleSets(t *testing.T) {
	recv := ByRole(RoleRecv)
	if len(recv) == 0 {
		t.Fatal("no recv anchors")
	}
	for _, name := range recv {
		if !IsRecv(name) {
			t.Errorf("IsRecv(%s) = false for RoleRecv member", name)
		}
		if IsDeliver(name) {
			t.Errorf("recv anchor %s classified as delivery", name)
		}
	}
	for _, name := range ByRole(RoleDeliver) {
		if !IsDeliver(name) || !IsSend(name) {
			t.Errorf("delivery %s misclassified", name)
		}
	}
	// IPC functions are neither recv nor send anchors.
	if IsRecv("ipc_recv") || IsSend("ipc_send") {
		t.Error("IPC functions classified as network anchors")
	}
}

func TestMessageArg(t *testing.T) {
	tests := []struct {
		name string
		arg  int
		ok   bool
	}{
		{"SSL_write", 1, true},
		{"http_post", 2, true},
		{"mosquitto_publish", 3, true},
		{"mqtt_publish", 2, true},
		{"curl_easy_perform", 0, true},
		{"send", 1, true},
		{"recv", 0, false},
		{"strcpy", 0, false},
	}
	for _, tt := range tests {
		arg, ok := MessageArg(tt.name)
		if ok != tt.ok || (ok && arg != tt.arg) {
			t.Errorf("MessageArg(%s) = %d, %v; want %d, %v", tt.name, arg, ok, tt.arg, tt.ok)
		}
	}
}

func TestEveryDeliveryHasMessageArg(t *testing.T) {
	for _, name := range ByRole(RoleDeliver) {
		if _, ok := MessageArg(name); !ok {
			t.Errorf("delivery function %s has no message-argument mapping", name)
		}
	}
}
