package externs

import "sort"

// Shape is the name-blind behavioral key of an extern signature: the only
// facts about a callee that survive symbol stripping. A stripped import
// entry still reveals whether the callee's result is consumed (the calling
// convention is observable in machine code), and each callsite encodes its
// own argument count — so arity and result use together carve the signature
// database into small candidate groups that behavioral matching
// (internal/strip) disambiguates.
type Shape struct {
	NumParams int // Variadic for per-callsite arity
	HasResult bool
}

// SigIndex groups the extern signature database by Shape. Within a group,
// signatures keep Table order, which doubles as the deterministic
// tie-breaker for behavioral matching.
type SigIndex struct {
	byShape map[Shape][]Sig
}

// NewSigIndex builds the name-blind index over the full extern Table.
func NewSigIndex() *SigIndex {
	ix := &SigIndex{byShape: make(map[Shape][]Sig)}
	for _, s := range Table {
		k := Shape{NumParams: s.NumParams, HasResult: s.HasResult}
		ix.byShape[k] = append(ix.byShape[k], s)
	}
	return ix
}

// Shapes returns every distinct shape in the index, sorted (fixed arities
// ascending, Variadic last, no-result before result). Mostly for tests and
// reporting.
func (ix *SigIndex) Shapes() []Shape {
	out := make([]Shape, 0, len(ix.byShape))
	for k := range ix.byShape {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		// Variadic (-1) sorts after every fixed arity.
		ai, bi := a.NumParams, b.NumParams
		if ai == Variadic {
			ai = int(^uint(0) >> 1)
		}
		if bi == Variadic {
			bi = int(^uint(0) >> 1)
		}
		if ai != bi {
			return ai < bi
		}
		return !a.HasResult && b.HasResult
	})
	return out
}

// Group returns the signatures registered under one exact shape, in Table
// order.
func (ix *SigIndex) Group(k Shape) []Sig {
	return ix.byShape[k]
}

// Candidates returns every signature compatible with the observed callsite
// arities and result use of one unresolved import, in Table order:
//
//   - no observed callsites: nothing can be said, no candidates;
//   - one distinct arity a: fixed-arity signatures with NumParams == a,
//     plus every variadic signature (a variadic callee accepts any single
//     arity too);
//   - several distinct arities: only variadic signatures remain — a
//     fixed-arity callee cannot be called with two different counts.
//
// HasResult must match exactly in all cases.
func (ix *SigIndex) Candidates(arities []int, hasResult bool) []Sig {
	if len(arities) == 0 {
		return nil
	}
	distinct := map[int]bool{}
	for _, a := range arities {
		distinct[a] = true
	}
	var out []Sig
	if len(distinct) == 1 {
		for a := range distinct {
			out = append(out, ix.byShape[Shape{NumParams: a, HasResult: hasResult}]...)
		}
	}
	out = append(out, ix.byShape[Shape{NumParams: Variadic, HasResult: hasResult}]...)
	// Restore global Table order across the merged groups.
	pos := make(map[string]int, len(Table))
	for i, s := range Table {
		pos[s.Name] = i
	}
	sort.SliceStable(out, func(i, j int) bool { return pos[out[i].Name] < pos[out[j].Name] })
	return out
}
