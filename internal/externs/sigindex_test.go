package externs

import (
	"reflect"
	"testing"
)

func names(sigs []Sig) []string {
	out := make([]string, len(sigs))
	for i, s := range sigs {
		out[i] = s.Name
	}
	return out
}

func TestSigIndexCoversTable(t *testing.T) {
	ix := NewSigIndex()
	total := 0
	for _, k := range ix.Shapes() {
		total += len(ix.Group(k))
	}
	if total != len(Table) {
		t.Errorf("index holds %d signatures, Table has %d", total, len(Table))
	}
}

// TestSigIndexCollisionGroups pins the known behavioral-collision groups:
// externs that a stripped binary can only tell apart by callsite behavior,
// never by shape. If the Table grows, these memberships must stay true for
// the matcher's discriminators (written-buffer bonus, route markers,
// anchor floors) to keep making sense.
func TestSigIndexCollisionGroups(t *testing.T) {
	ix := NewSigIndex()
	tests := []struct {
		shape   Shape
		members []string // must all be present, in Table order
	}{
		// The arity-3-with-result group is the crowded one: recv anchors,
		// deliver anchors, and plain string helpers all collide.
		{Shape{3, true}, []string{"recvmsg", "SSL_read", "sendmsg", "SSL_write",
			"CyaSSL_write", "http_post", "mqtt_publish", "strncpy"}},
		// Single-argument taint origins collide with each other and with
		// allocation — key-universe hints are the only discriminator.
		{Shape{1, true}, []string{"nvram_get", "nvram_safe_get", "config_read",
			"uci_get", "getenv", "web_get_param", "malloc", "time"}},
		// Zero-arity constructors.
		{Shape{0, true}, []string{"curl_easy_init", "cJSON_CreateObject", "rand"}},
		// Variadic formatting family lives in its own shape.
		{Shape{Variadic, true}, []string{"sprintf", "snprintf", "printf", "fprintf"}},
	}
	for _, tt := range tests {
		group := names(ix.Group(tt.shape))
		pos := map[string]int{}
		for i, n := range group {
			pos[n] = i
		}
		last := -1
		for _, m := range tt.members {
			i, ok := pos[m]
			if !ok {
				t.Errorf("shape %+v: expected member %q missing from group %v", tt.shape, m, group)
				continue
			}
			if i < last {
				t.Errorf("shape %+v: %q out of Table order in group %v", tt.shape, m, group)
			}
			last = i
		}
	}
}

func TestSigIndexGroupsAreShapeHomogeneous(t *testing.T) {
	ix := NewSigIndex()
	for _, k := range ix.Shapes() {
		for _, s := range ix.Group(k) {
			if s.NumParams != k.NumParams || s.HasResult != k.HasResult {
				t.Errorf("shape %+v contains mismatched sig %+v", k, s)
			}
		}
	}
}

func TestCandidates(t *testing.T) {
	ix := NewSigIndex()
	tests := []struct {
		name      string
		arities   []int
		hasResult bool
		contains  []string
		excludes  []string
	}{
		{
			name: "no observations, no candidates",
		},
		{
			name: "single arity includes variadic",
			// An import always called with 2 args could still be sprintf.
			arities: []int{2, 2}, hasResult: true,
			contains: []string{"strcpy", "strcat", "mqtt_recv", "sprintf", "printf"},
			excludes: []string{"strncpy", "malloc", "socket"},
		},
		{
			name:    "conflicting arities leave only variadics",
			arities: []int{2, 3, 4}, hasResult: true,
			contains: []string{"sprintf", "snprintf", "printf", "fprintf"},
			excludes: []string{"strcpy", "strncpy", "recv", "SSL_write"},
		},
		{
			name:    "result use is a hard filter",
			arities: []int{2}, hasResult: false,
			contains: []string{"event_register", "uloop_fd_add", "syslog"},
			excludes: []string{"strcpy", "mqtt_recv", "sprintf"},
		},
		{
			name:    "zero arity",
			arities: []int{0}, hasResult: true,
			contains: []string{"curl_easy_init", "cJSON_CreateObject", "rand"},
			excludes: []string{"malloc"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ix.Candidates(tt.arities, tt.hasResult)
			if tt.arities == nil {
				if got != nil {
					t.Fatalf("Candidates(nil) = %v, want none", names(got))
				}
				return
			}
			pos := map[string]int{}
			for i, s := range got {
				pos[s.Name] = i
			}
			for _, want := range tt.contains {
				if _, ok := pos[want]; !ok {
					t.Errorf("candidates missing %q: %v", want, names(got))
				}
			}
			for _, bad := range tt.excludes {
				if _, ok := pos[bad]; ok {
					t.Errorf("candidates wrongly include %q", bad)
				}
			}
		})
	}
}

// TestCandidatesTableOrder checks the merged fixed+variadic candidate list
// is re-sorted to global Table order — the matcher's deterministic
// tie-breaker depends on it.
func TestCandidatesTableOrder(t *testing.T) {
	ix := NewSigIndex()
	got := names(ix.Candidates([]int{2}, true))
	pos := map[string]int{}
	for i, s := range Table {
		pos[s.Name] = i
	}
	for i := 1; i < len(got); i++ {
		if pos[got[i-1]] > pos[got[i]] {
			t.Fatalf("candidates out of Table order: %q after %q in %v",
				got[i], got[i-1], got)
		}
	}
	// sprintf (variadic, Table position before strcpy) must precede strcpy
	// even though they come from different shape groups.
	want := []string{"sprintf", "snprintf", "strcpy"}
	var seen []string
	for _, n := range got {
		for _, w := range want {
			if n == w {
				seen = append(seen, n)
			}
		}
	}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("variadic/fixed interleave = %v, want %v", seen, want)
	}
}
