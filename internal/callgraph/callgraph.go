// Package callgraph builds the whole-binary call graph over a lifted
// program and answers the queries the FIRMRES pipeline needs:
//
//   - caller/callee adjacency (taint backtracing, §IV-B propagation rules);
//   - callsite lookup by callee name (anchor-node discovery, §IV-A);
//   - shortest call-graph distances and paths between functions (pairing of
//     fun_in/fun_out anchors and handler-sequence extraction, Fig. 4).
package callgraph

import (
	"sort"

	"firmres/internal/pcode"
)

// Edge is one resolved direct call.
type Edge struct {
	Caller *pcode.Function
	Callee *pcode.Function
	Site   pcode.CallSite
}

// Graph is the call graph of one program.
type Graph struct {
	Prog      *pcode.Program
	edges     []Edge
	calleesOf map[uint32][]Edge // caller addr -> outgoing edges
	callersOf map[uint32][]Edge // callee addr -> incoming edges
	importCS  map[string][]pcode.CallSite
	funcRefs  map[uint32][]pcode.CallSite // function address materialized as a constant (callback registration)
}

// Build constructs the call graph.
func Build(prog *pcode.Program) *Graph {
	g := &Graph{
		Prog:      prog,
		calleesOf: make(map[uint32][]Edge),
		callersOf: make(map[uint32][]Edge),
		importCS:  make(map[string][]pcode.CallSite),
		funcRefs:  make(map[uint32][]pcode.CallSite),
	}
	for _, f := range prog.Funcs {
		for i := range f.Ops {
			op := &f.Ops[i]
			// Track function addresses materialized as constants: these are
			// callback registrations (event_register(&handler, ...)), the
			// implicit-invocation channel of §IV-A.
			if op.Code == pcode.COPY && len(op.Inputs) == 1 && op.Inputs[0].IsConst() {
				if callee, ok := prog.FuncAt(uint32(op.Inputs[0].Offset)); ok {
					g.funcRefs[callee.Addr()] = append(g.funcRefs[callee.Addr()],
						pcode.CallSite{Fn: f, OpIdx: i})
				}
			}
			if op.Call == nil {
				continue
			}
			site := pcode.CallSite{Fn: f, OpIdx: i}
			switch op.Call.Kind {
			case pcode.CallLocal:
				callee, ok := prog.FuncAt(op.Call.Addr)
				if !ok {
					continue
				}
				e := Edge{Caller: f, Callee: callee, Site: site}
				g.edges = append(g.edges, e)
				g.calleesOf[f.Addr()] = append(g.calleesOf[f.Addr()], e)
				g.callersOf[callee.Addr()] = append(g.callersOf[callee.Addr()], e)
			case pcode.CallImported:
				g.importCS[op.Call.Name] = append(g.importCS[op.Call.Name], site)
			}
		}
	}
	return g
}

// Edges returns all resolved direct-call edges.
func (g *Graph) Edges() []Edge { return g.edges }

// Callees returns the outgoing edges of f.
func (g *Graph) Callees(f *pcode.Function) []Edge { return g.calleesOf[f.Addr()] }

// Callers returns the incoming edges of f.
func (g *Graph) Callers(f *pcode.Function) []Edge { return g.callersOf[f.Addr()] }

// ImportCallSites returns the callsites invoking the named import.
func (g *Graph) ImportCallSites(name string) []pcode.CallSite { return g.importCS[name] }

// ImportNames returns the sorted names of imports with at least one callsite.
func (g *Graph) ImportNames() []string {
	out := make([]string, 0, len(g.importCS))
	for name := range g.importCS {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddressTaken returns the sites where f's address is materialized as a
// constant (callback registration), excluding direct calls.
func (g *Graph) AddressTaken(f *pcode.Function) []pcode.CallSite { return g.funcRefs[f.Addr()] }

// HasDirectCaller reports whether any function directly calls f.
func (g *Graph) HasDirectCaller(f *pcode.Function) bool { return len(g.callersOf[f.Addr()]) > 0 }

// Distance returns the length of the shortest undirected call-graph path
// between two functions, or -1 when they are disconnected. The paper pairs
// fun_in/fun_out anchor callsites "by their closest distances on the call
// graph"; undirected distance is the natural metric because the anchors sit
// in callees on both sides of the handler's spine.
func (g *Graph) Distance(a, b *pcode.Function) int {
	path := g.Path(a, b)
	if path == nil {
		return -1
	}
	return len(path) - 1
}

// Path returns the functions along one shortest undirected path from a to b,
// inclusive of both endpoints, or nil when disconnected. The result is the
// "function call sequence" S of §IV-A over which the string-parsing factor
// is maximized.
func (g *Graph) Path(a, b *pcode.Function) []*pcode.Function {
	if a == nil || b == nil {
		return nil
	}
	if a.Addr() == b.Addr() {
		return []*pcode.Function{a}
	}
	prev := map[uint32]uint32{a.Addr(): a.Addr()}
	queue := []*pcode.Function{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var neighbors []*pcode.Function
		for _, e := range g.calleesOf[cur.Addr()] {
			neighbors = append(neighbors, e.Callee)
		}
		for _, e := range g.callersOf[cur.Addr()] {
			neighbors = append(neighbors, e.Caller)
		}
		for _, nb := range neighbors {
			if _, seen := prev[nb.Addr()]; seen {
				continue
			}
			prev[nb.Addr()] = cur.Addr()
			if nb.Addr() == b.Addr() {
				return g.tracePath(prev, a, nb)
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

func (g *Graph) tracePath(prev map[uint32]uint32, a, end *pcode.Function) []*pcode.Function {
	var rev []*pcode.Function
	for cur := end; ; {
		rev = append(rev, cur)
		if cur.Addr() == a.Addr() {
			break
		}
		next, ok := g.Prog.FuncAt(prev[cur.Addr()])
		if !ok {
			return nil
		}
		cur = next
	}
	out := make([]*pcode.Function, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
