package callgraph

import (
	"testing"

	"firmres/internal/asm"
	"firmres/internal/isa"
	"firmres/internal/pcode"
)

// buildChain assembles: main -> dispatch -> parse -> send(recv import inside
// parse), plus an async handler registered by callback and never called.
func buildChain(t *testing.T) (*pcode.Program, *Graph) {
	t.Helper()
	a := asm.New("t")

	parse := a.Func("parse", 1, true)
	parse.CallImport("recv", 4)
	parse.CallImport("send", 4)
	parse.Ret()

	dispatch := a.Func("dispatch", 1, true)
	dispatch.Call("parse")
	dispatch.Ret()

	handler := a.Func("on_cloud_msg", 2, true)
	handler.CallImport("recv", 4)
	handler.Ret()

	mainFn := a.Func("main", 0, true)
	mainFn.Call("dispatch")
	mainFn.Call("dispatch")
	mainFn.LAFunc(isa.R1, "on_cloud_msg")
	mainFn.CallImport("event_register", 2)
	mainFn.Ret()

	bin, err := a.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	prog, err := pcode.LiftProgram(bin)
	if err != nil {
		t.Fatalf("LiftProgram: %v", err)
	}
	return prog, Build(prog)
}

func TestEdges(t *testing.T) {
	prog, g := buildChain(t)
	mainFn, _ := prog.FuncByName("main")
	dispatch, _ := prog.FuncByName("dispatch")
	parse, _ := prog.FuncByName("parse")

	if got := len(g.Callees(mainFn)); got != 2 {
		t.Errorf("main callees = %d, want 2 (two calls to dispatch)", got)
	}
	if got := len(g.Callers(dispatch)); got != 2 {
		t.Errorf("dispatch callers = %d, want 2", got)
	}
	if got := len(g.Callers(parse)); got != 1 {
		t.Errorf("parse callers = %d, want 1", got)
	}
	if len(g.Edges()) != 3 {
		t.Errorf("total edges = %d, want 3", len(g.Edges()))
	}
}

func TestImportCallSites(t *testing.T) {
	_, g := buildChain(t)
	recvSites := g.ImportCallSites("recv")
	if len(recvSites) != 2 {
		t.Fatalf("recv callsites = %d, want 2", len(recvSites))
	}
	if len(g.ImportCallSites("send")) != 1 {
		t.Error("send callsites != 1")
	}
	if g.ImportCallSites("sprintf") != nil {
		t.Error("phantom sprintf callsites")
	}
	names := g.ImportNames()
	if len(names) != 3 { // recv, send, event_register
		t.Errorf("ImportNames = %v", names)
	}
}

func TestAsyncHandlerHasNoDirectCaller(t *testing.T) {
	prog, g := buildChain(t)
	handler, _ := prog.FuncByName("on_cloud_msg")
	parse, _ := prog.FuncByName("parse")
	if g.HasDirectCaller(handler) {
		t.Error("callback-registered handler reported as directly called")
	}
	if !g.HasDirectCaller(parse) {
		t.Error("parse reported as not directly called")
	}
	refs := g.AddressTaken(handler)
	if len(refs) != 1 {
		t.Fatalf("AddressTaken = %d sites, want 1", len(refs))
	}
	if refs[0].Fn.Name() != "main" {
		t.Errorf("address taken in %q, want main", refs[0].Fn.Name())
	}
}

func TestDistanceAndPath(t *testing.T) {
	prog, g := buildChain(t)
	mainFn, _ := prog.FuncByName("main")
	dispatch, _ := prog.FuncByName("dispatch")
	parse, _ := prog.FuncByName("parse")
	handler, _ := prog.FuncByName("on_cloud_msg")

	if d := g.Distance(mainFn, parse); d != 2 {
		t.Errorf("Distance(main, parse) = %d, want 2", d)
	}
	if d := g.Distance(parse, parse); d != 0 {
		t.Errorf("Distance(parse, parse) = %d, want 0", d)
	}
	// Undirected: parse -> main also works.
	if d := g.Distance(parse, mainFn); d != 2 {
		t.Errorf("Distance(parse, main) = %d, want 2", d)
	}
	// The handler is disconnected from the direct-call graph.
	if d := g.Distance(mainFn, handler); d != -1 {
		t.Errorf("Distance(main, handler) = %d, want -1", d)
	}
	path := g.Path(mainFn, parse)
	if len(path) != 3 || path[0] != mainFn || path[1] != dispatch || path[2] != parse {
		names := make([]string, len(path))
		for i, f := range path {
			names[i] = f.Name()
		}
		t.Errorf("Path(main, parse) = %v", names)
	}
	if g.Path(nil, parse) != nil {
		t.Error("Path with nil endpoint returned non-nil")
	}
}

func TestRecursionDoesNotHang(t *testing.T) {
	a := asm.New("t")
	f := a.Func("rec", 1, true)
	f.Call("rec")
	f.Ret()
	other := a.Func("island", 0, false)
	other.Ret()
	bin, err := a.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	prog, err := pcode.LiftProgram(bin)
	if err != nil {
		t.Fatalf("LiftProgram: %v", err)
	}
	g := Build(prog)
	rec, _ := prog.FuncByName("rec")
	island, _ := prog.FuncByName("island")
	if d := g.Distance(rec, island); d != -1 {
		t.Errorf("Distance to island = %d, want -1", d)
	}
	if !g.HasDirectCaller(rec) {
		t.Error("self-recursive function has no caller")
	}
}
