package faultinject

import (
	"bytes"
	"testing"

	"firmres/internal/binfmt"
	"firmres/internal/corpus"
	"firmres/internal/image"
)

func packedImage(t *testing.T) []byte {
	t.Helper()
	img, err := corpus.BuildImage(corpus.Device(17))
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	return img.Pack()
}

func TestCorruptIsDeterministic(t *testing.T) {
	data := packedImage(t)
	for _, mode := range Modes() {
		a, errA := Corrupt(data, mode, 7)
		b, errB := Corrupt(data, mode, 7)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: nondeterministic error: %v vs %v", mode, errA, errB)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: same seed produced different output", mode)
		}
		c, err := Corrupt(data, mode, 8)
		if err == nil && bytes.Equal(a, c) && mode != ModeBadMagic {
			// Seed-independent modes (bad-magic) aside, different seeds
			// should corrupt differently at least sometimes; identical
			// output for these sizes would mean the seed is ignored.
			if mode == ModeTruncate || mode == ModeBitFlip {
				t.Errorf("%s: seeds 7 and 8 produced identical output", mode)
			}
		}
	}
}

func TestCorruptChangesTheImage(t *testing.T) {
	data := packedImage(t)
	for _, mode := range Modes() {
		for seed := int64(0); seed < 3; seed++ {
			out, err := Corrupt(data, mode, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", mode, seed, err)
			}
			if bytes.Equal(out, data) {
				t.Errorf("%s seed %d: output identical to input", mode, seed)
			}
			if bytes.Equal(data, packedImage(t)) == false {
				t.Fatalf("%s seed %d: Corrupt modified its input", mode, seed)
			}
		}
	}
}

func TestUnknownMode(t *testing.T) {
	if _, err := Corrupt([]byte("x"), Mode("nope"), 0); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestCyclicCallGraphStillParses: the semantic mode must survive the
// structural validators — the whole point is damage the parsers accept.
func TestCyclicCallGraphStillParses(t *testing.T) {
	out, err := Corrupt(packedImage(t), ModeCyclicCallGraph, 1)
	if err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	img, err := image.Unpack(out)
	if err != nil {
		t.Fatalf("cyclic image no longer unpacks: %v", err)
	}
	parsed := 0
	for _, f := range img.Executables() {
		if !f.IsBinary() {
			continue
		}
		if _, err := binfmt.Unmarshal(f.Data); err == nil {
			parsed++
		}
	}
	if parsed == 0 {
		t.Error("no executable parses after cyclic-call-graph corruption")
	}
}
