// Package faultinject deterministically corrupts firmware images for
// robustness testing. Large crawled corpora are dominated by truncated
// downloads, bit-rotted flash dumps, and adversarial uploads; the pipeline
// must survive all of them. Each Mode models one corruption family, from
// raw container damage (truncation, bit flips) through structured binfmt
// damage (bad section headers, oversized string tables) to semantic damage
// the parsers accept but the analyses must bound (cyclic call graphs).
//
// Corruption is a pure function of (data, mode, seed): the same inputs
// always yield the same corrupted image, so failing cases reproduce.
package faultinject

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"

	"firmres/internal/binfmt"
	"firmres/internal/image"
	"firmres/internal/isa"
	"firmres/internal/obs"
)

// Mode names one corruption family.
type Mode string

// Corruption modes.
const (
	// ModeTruncate cuts the image off at a seed-chosen point, as an
	// interrupted download would.
	ModeTruncate Mode = "truncate"

	// ModeBitFlip flips a handful of seed-chosen bits anywhere in the
	// image, as flash rot would.
	ModeBitFlip Mode = "bit-flip"

	// ModeBadMagic corrupts the container magic.
	ModeBadMagic Mode = "bad-magic"

	// ModeBadChecksum rewrites the trailing CRC so the payload no longer
	// verifies.
	ModeBadChecksum Mode = "bad-checksum"

	// ModeBadSectionHeader corrupts section ids and lengths inside one
	// executable's binfmt container, then repacks the image with a valid
	// outer checksum so the damage reaches the binary parser.
	ModeBadSectionHeader Mode = "bad-section-header"

	// ModeOversizedStrings inflates string-length prefixes inside one
	// executable to multi-gigabyte values, probing for unguarded
	// allocations in the parser.
	ModeOversizedStrings Mode = "oversized-string-table"

	// ModeHugeFileCount rewrites the image's file-count header to a huge
	// value, probing the container parser's allocation guards.
	ModeHugeFileCount Mode = "huge-file-count"

	// ModeCyclicCallGraph rewrites call targets inside the device-cloud
	// executable so the call graph contains cycles (self-loops and mutual
	// recursion). The result parses cleanly; the downstream analyses must
	// terminate anyway.
	ModeCyclicCallGraph Mode = "cyclic-call-graph"

	// ModeGarbageExecutable replaces one executable's body with seeded
	// noise behind a valid FRB1 magic.
	ModeGarbageExecutable Mode = "garbage-executable"
)

// Modes lists every corruption mode, in a stable order.
func Modes() []Mode {
	return []Mode{
		ModeTruncate, ModeBitFlip, ModeBadMagic, ModeBadChecksum,
		ModeBadSectionHeader, ModeOversizedStrings, ModeHugeFileCount,
		ModeCyclicCallGraph, ModeGarbageExecutable,
	}
}

// Option configures a corruption run.
type Option func(*options)

type options struct {
	met *obs.Metrics
}

// WithMetrics counts each corruption attempt as
// faultinject_trips_total{mode} in met, so robustness harnesses can
// cross-check how many injected faults reached the pipeline.
func WithMetrics(met *obs.Metrics) Option {
	return func(o *options) { o.met = met }
}

// Corrupt applies one corruption mode to a packed firmware image. The
// output depends only on (data, mode, seed). The input slice is never
// modified.
func Corrupt(data []byte, mode Mode, seed int64, opts ...Option) ([]byte, error) {
	var o options
	for _, f := range opts {
		f(&o)
	}
	o.met.Counter("faultinject_trips_total", "mode", string(mode)).Inc()
	rng := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), data...)
	switch mode {
	case ModeTruncate:
		if len(out) < 2 {
			return out, nil
		}
		// Cut somewhere in (0, len): always strictly shorter.
		return out[:1+rng.Intn(len(out)-1)], nil
	case ModeBitFlip:
		for i := 0; i < 8; i++ {
			pos := rng.Intn(len(out))
			out[pos] ^= 1 << uint(rng.Intn(8))
		}
		return out, nil
	case ModeBadMagic:
		for i := 0; i < len(image.Magic) && i < len(out); i++ {
			out[i] ^= 0xff
		}
		return out, nil
	case ModeBadChecksum:
		if len(out) < 4 {
			return out, nil
		}
		out[len(out)-4+rng.Intn(4)] ^= 0xff
		return out, nil
	case ModeHugeFileCount:
		return corruptFileCount(out, rng)
	case ModeBadSectionHeader:
		return corruptBinary(out, rng, smashSectionHeader)
	case ModeOversizedStrings:
		return corruptBinary(out, rng, inflateStringLengths)
	case ModeGarbageExecutable:
		return corruptBinary(out, rng, func(data []byte, rng *rand.Rand) []byte {
			noise := make([]byte, 64+rng.Intn(192))
			rng.Read(noise)
			return append([]byte(binfmt.Magic), noise...)
		})
	case ModeCyclicCallGraph:
		return corruptBinary(out, rng, makeCallGraphCyclic)
	default:
		return nil, fmt.Errorf("faultinject: unknown mode %q", mode)
	}
}

// corruptFileCount parses the image header far enough to find the u32 file
// count, rewrites it to a huge value, and restores the trailing CRC so the
// lie survives the integrity check.
func corruptFileCount(out []byte, rng *rand.Rand) ([]byte, error) {
	if len(out) < len(image.Magic)+12 {
		return out, nil
	}
	off := len(image.Magic)
	// Skip the device and version length-prefixed strings.
	for i := 0; i < 2; i++ {
		if off+4 > len(out) {
			return out, nil
		}
		n := binary.LittleEndian.Uint32(out[off:])
		off += 4 + int(n)
		if off > len(out) {
			return out, nil
		}
	}
	if off+4 > len(out)-4 {
		return out, nil
	}
	binary.LittleEndian.PutUint32(out[off:], 0x7fff_0000+uint32(rng.Intn(1<<16)))
	refreshChecksum(out)
	return out, nil
}

// corruptBinary unpacks the image, applies mutate to one seed-chosen FRB1
// executable, and repacks with a valid checksum, so the corruption reaches
// the layers beneath the container parser.
func corruptBinary(out []byte, rng *rand.Rand, mutate func([]byte, *rand.Rand) []byte) ([]byte, error) {
	img, err := image.Unpack(out)
	if err != nil {
		return nil, fmt.Errorf("faultinject: structured mode needs a valid image: %w", err)
	}
	var bins []*image.File
	for i := range img.Files {
		if img.Files[i].IsBinary() {
			bins = append(bins, &img.Files[i])
		}
	}
	if len(bins) == 0 {
		return nil, fmt.Errorf("faultinject: no FRB1 executables to corrupt")
	}
	f := bins[rng.Intn(len(bins))]
	f.Data = mutate(append([]byte(nil), f.Data...), rng)
	return img.Pack(), nil
}

// smashSectionHeader flips section id bytes and blows up section length
// fields past the end of the file.
func smashSectionHeader(data []byte, rng *rand.Rand) []byte {
	// Layout: magic(4) textBase(4) dataBase(4), then id(1) len(4) body...
	off := 12
	for hop := rng.Intn(4); hop > 0 && off+5 <= len(data); hop-- {
		n := binary.LittleEndian.Uint32(data[off+1:])
		if off+5+int(n) > len(data) {
			break
		}
		off += 5 + int(n)
	}
	if off+5 <= len(data) {
		data[off] = byte(200 + rng.Intn(55))                                // unknown section id
		binary.LittleEndian.PutUint32(data[off+1:], uint32(len(data))*16+7) // length past EOF
	}
	return data
}

// inflateStringLengths rewrites plausible string-length prefixes (small u32
// values followed by printable bytes) to multi-gigabyte counts.
func inflateStringLengths(data []byte, rng *rand.Rand) []byte {
	hits := 0
	for off := 12; off+8 <= len(data) && hits < 4; off++ {
		n := binary.LittleEndian.Uint32(data[off:])
		if n == 0 || n > 64 || off+4+int(n) > len(data) {
			continue
		}
		s := data[off+4 : off+4+int(n)]
		printable := true
		for _, c := range s {
			if c < 0x20 || c > 0x7e {
				printable = false
				break
			}
		}
		if !printable {
			continue
		}
		binary.LittleEndian.PutUint32(data[off:], 0x4000_0000+uint32(rng.Intn(1<<20)))
		hits++
		off += 4 + int(n)
	}
	return data
}

// makeCallGraphCyclic decodes the executable and rewrites local call
// targets: some calls become self-loops, and the first two functions call
// each other. The mutated binary re-marshals cleanly.
func makeCallGraphCyclic(data []byte, rng *rand.Rand) []byte {
	bin, err := binfmt.Unmarshal(data)
	if err != nil || len(bin.Funcs) == 0 || len(bin.Text)%isa.InstrSize != 0 {
		return data // not mutable at this level; hand back unchanged
	}
	instrs, err := isa.DecodeAll(bin.Text)
	if err != nil {
		return data
	}
	funcAt := func(addr uint32) (binfmt.FuncSym, bool) { return bin.FuncAt(addr) }
	var text bytes.Buffer
	calls := 0
	for i, in := range instrs {
		addr := bin.TextBase + uint32(i*isa.InstrSize)
		if in.Op == isa.OpCall {
			owner, ok := funcAt(addr)
			if ok {
				switch calls % 3 {
				case 0:
					in.Imm = int32(owner.Addr) // direct recursion
				case 1:
					if len(bin.Funcs) > 1 {
						// Call a seed-chosen other function, forming larger
						// cycles across the graph.
						in.Imm = int32(bin.Funcs[rng.Intn(len(bin.Funcs))].Addr)
					}
				}
				calls++
			}
		}
		text.Write(in.Encode(nil))
	}
	bin.Text = text.Bytes()
	return bin.Marshal()
}

// refreshChecksum recomputes the trailing CRC over the mutated payload.
func refreshChecksum(out []byte) {
	if len(out) < 4 {
		return
	}
	sum := crc32.ChecksumIEEE(out[:len(out)-4])
	binary.LittleEndian.PutUint32(out[len(out)-4:], sum)
}
