// Package dataflow implements intra-procedural reaching-definitions
// analysis and def-use queries over lifted P-Code, the machinery underneath
// the backward taint engine of §IV-B.
//
// Definitions are P-Code ops with an output varnode. Storage locations are
// the lift-time interned (space, offset) pairs of package pcode: stack
// slots addressed as INT_ADD(SP, const) through LOAD/STORE resolve to
// synthetic RAM-space locations (precomputed by the lifter) so that
// register spills do not break backward traces, and every per-op structure
// here is a dense array indexed by op or pcode.LocID — the solver and the
// ReachingDefs block walk never hash a key. Unresolvable memory stays
// conservative, matching the paper's over-taint strategy.
package dataflow

import (
	"firmres/internal/cfg"
	"firmres/internal/pcode"
)

// DefUse holds the reaching-definitions solution of one function.
type DefUse struct {
	Fn  *pcode.Function
	G   *cfg.Graph
	in  []bitset // per-block IN sets over def indices
	out []bitset

	defOps  []int32       // def index -> op index
	defLoc  []pcode.LocID // def index -> defined location
	defsAt  []int32       // op index -> def index, -1 for ops that don't define
	locDefs [][]int32     // location ID -> def indices
}

// New computes the reaching-definitions solution for fn over its CFG.
func New(fn *pcode.Function, g *cfg.Graph) *DefUse {
	du := &DefUse{
		Fn:      fn,
		G:       g,
		defsAt:  make([]int32, len(fn.Ops)),
		locDefs: make([][]int32, fn.NumLocs()),
	}
	for i := range du.defsAt {
		du.defsAt[i] = -1
	}
	du.collectDefs()
	du.solve()
	return du
}

// SlotVarnode returns the synthetic varnode for stack slot at SP+off.
func SlotVarnode(off uint32) pcode.Varnode {
	return pcode.Varnode{Space: pcode.SpaceRAM, Offset: uint64(off), Size: 4}
}

// collectDefs numbers every definition. STOREs to resolvable stack slots
// define the slot's synthetic location.
func (du *DefUse) collectDefs() {
	ops := du.Fn.Ops
	for i := range ops {
		op := &ops[i]
		switch {
		case op.HasOut:
			du.addDef(i, du.Fn.LocID(op.Output))
		case op.Code == pcode.STORE:
			if slot := du.Fn.SlotLocAt(i); slot != pcode.NoLoc {
				du.addDef(i, slot)
			}
		}
	}
}

func (du *DefUse) addDef(opIdx int, loc pcode.LocID) {
	idx := int32(len(du.defOps))
	du.defOps = append(du.defOps, int32(opIdx))
	du.defLoc = append(du.defLoc, loc)
	du.defsAt[opIdx] = idx
	du.locDefs[loc] = append(du.locDefs[loc], idx)
}

// Slot returns the resolved stack-slot varnode of a LOAD/STORE op, if any.
func (du *DefUse) Slot(opIdx int) (pcode.Varnode, bool) {
	return du.Fn.SlotAt(opIdx)
}

// solve runs the classic iterative reaching-definitions fixpoint.
func (du *DefUse) solve() {
	nblocks := len(du.G.Blocks)
	ndefs := len(du.defOps)
	du.in = make([]bitset, nblocks)
	du.out = make([]bitset, nblocks)
	gen := make([]bitset, nblocks)
	kill := make([]bitset, nblocks)
	for b := 0; b < nblocks; b++ {
		du.in[b] = newBitset(ndefs)
		du.out[b] = newBitset(ndefs)
		gen[b] = newBitset(ndefs)
		kill[b] = newBitset(ndefs)
		blk := du.G.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			di := du.defsAt[i]
			if di < 0 {
				continue
			}
			loc := du.defLoc[di]
			// This def kills all other defs of the same location.
			for _, other := range du.locDefs[loc] {
				if other != di {
					gen[b].clear(int(other))
					kill[b].set(int(other))
				}
			}
			gen[b].set(int(di))
			kill[b].clear(int(di))
		}
	}

	order := du.G.ReversePostOrder()
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			blk := du.G.Blocks[b]
			in := newBitset(ndefs)
			for _, p := range blk.Preds {
				in.union(du.out[p])
			}
			out := in.clone()
			out.subtract(kill[b])
			out.union(gen[b])
			if !in.equal(du.in[b]) || !out.equal(du.out[b]) {
				du.in[b] = in
				du.out[b] = out
				changed = true
			}
		}
	}
}

// ReachingDefs returns the op indices of the definitions of location v that
// reach the program point just before opIdx.
func (du *DefUse) ReachingDefs(opIdx int, v pcode.Varnode) []int {
	loc := du.Fn.LocID(v)
	if loc == pcode.NoLoc {
		return nil
	}
	candidates := du.locDefs[loc]
	if len(candidates) == 0 {
		return nil
	}
	blk := du.G.BlockOf(opIdx)
	if blk == nil {
		return nil
	}
	// Walk the block from its start to opIdx, tracking the last local def.
	lastLocal := int32(-1)
	for i := blk.Start; i < opIdx; i++ {
		if di := du.defsAt[i]; di >= 0 && du.defLoc[di] == loc {
			lastLocal = di
		}
	}
	if lastLocal >= 0 {
		return []int{int(du.defOps[lastLocal])}
	}
	// Otherwise every def of loc in the block's IN set reaches.
	var out []int
	for _, di := range candidates {
		if du.in[blk.ID].has(int(di)) {
			out = append(out, int(du.defOps[di]))
		}
	}
	return out
}

// DefSites returns the op indices of all definitions of location v anywhere
// in the function.
func (du *DefUse) DefSites(v pcode.Varnode) []int {
	loc := du.Fn.LocID(v)
	if loc == pcode.NoLoc {
		return nil
	}
	var out []int
	for _, di := range du.locDefs[loc] {
		out = append(out, int(du.defOps[di]))
	}
	return out
}

// IsParamLive reports whether location v used at opIdx may still hold the
// function's incoming value (i.e. no definition of v reaches opIdx). This is
// how the taint engine decides to escalate to the callers (§IV-B: "if the
// taint source is a parameter of its caller, all possible callsites of the
// caller would be analyzed").
func (du *DefUse) IsParamLive(opIdx int, v pcode.Varnode) bool {
	if len(du.ReachingDefs(opIdx, v)) > 0 {
		return false
	}
	// Entry value reaches opIdx only if the block is reachable from entry.
	blk := du.G.BlockOf(opIdx)
	return blk != nil && du.G.EntryReaches(blk.ID)
}

// bitset is a fixed-capacity bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool {
	return b[i/64]&(1<<(i%64)) != 0
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) union(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) subtract(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
