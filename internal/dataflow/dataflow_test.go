package dataflow

import (
	"testing"

	"firmres/internal/asm"
	"firmres/internal/cfg"
	"firmres/internal/isa"
	"firmres/internal/pcode"
)

func lift(t *testing.T, build func(*asm.FuncBuilder)) (*pcode.Function, *DefUse) {
	t.Helper()
	a := asm.New("t")
	f := a.Func("f", 2, true)
	build(f)
	bin, err := a.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	fn, err := pcode.Lift(bin, bin.Funcs[0])
	if err != nil {
		t.Fatalf("Lift: %v", err)
	}
	return fn, New(fn, cfg.Build(fn))
}

// opAt returns the index of the n-th op with the given code.
func opAt(fn *pcode.Function, code pcode.OpCode, n int) int {
	seen := 0
	for i := range fn.Ops {
		if fn.Ops[i].Code == code {
			if seen == n {
				return i
			}
			seen++
		}
	}
	return -1
}

func TestStraightLineReachingDef(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		f.LI(isa.R3, 7)       // op0: def r3
		f.Mov(isa.R4, isa.R3) // op1: use r3
		f.LI(isa.R3, 9)       // op2: redef r3
		f.Mov(isa.R5, isa.R3) // op3: use r3
		f.Ret()
	})
	r3 := pcode.Register(isa.R3)
	if defs := du.ReachingDefs(1, r3); len(defs) != 1 || defs[0] != 0 {
		t.Errorf("defs of r3 at op1 = %v, want [0]", defs)
	}
	if defs := du.ReachingDefs(3, r3); len(defs) != 1 || defs[0] != 2 {
		t.Errorf("defs of r3 at op3 = %v, want [2]", defs)
	}
	if got := du.DefSites(r3); len(got) != 2 {
		t.Errorf("DefSites(r3) = %v", got)
	}
	_ = fn
}

func TestDiamondMerge(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		elseL := f.NewLabel()
		endL := f.NewLabel()
		f.Beq(isa.R1, isa.R2, elseL)
		f.LI(isa.R3, 1) // def A
		f.Jmp(endL)
		f.Bind(elseL)
		f.LI(isa.R3, 2) // def B
		f.Bind(endL)
		f.Mov(isa.R4, isa.R3) // both defs reach
		f.Ret()
	})
	use := opAt(fn, pcode.COPY, 2) // the Mov after the join
	defs := du.ReachingDefs(use, pcode.Register(isa.R3))
	if len(defs) != 2 {
		t.Fatalf("defs at join = %v, want two", defs)
	}
}

func TestKillInOneArm(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		elseL := f.NewLabel()
		endL := f.NewLabel()
		f.LI(isa.R3, 1) // def A dominates
		f.Beq(isa.R1, isa.R2, elseL)
		f.LI(isa.R3, 2) // def B kills A on this path
		f.Jmp(endL)
		f.Bind(elseL)
		f.Nop()
		f.Bind(endL)
		f.Mov(isa.R4, isa.R3)
		f.Ret()
	})
	use := opAt(fn, pcode.COPY, 2)
	defs := du.ReachingDefs(use, pcode.Register(isa.R3))
	if len(defs) != 2 {
		t.Fatalf("defs at merge = %v, want A and B", defs)
	}
}

func TestLoopCarriedDef(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		f.LI(isa.R3, 0)
		top := f.NewLabel()
		done := f.NewLabel()
		f.Bind(top)
		f.Bge(isa.R3, isa.R1, done)
		f.AddI(isa.R3, isa.R3, 1) // redefines r3 inside loop
		f.Jmp(top)
		f.Bind(done)
		f.Mov(isa.R1, isa.R3)
		f.Ret()
	})
	// At the loop-header compare, both the init and the increment reach.
	cmp := opAt(fn, pcode.INT_SLESS, 0)
	defs := du.ReachingDefs(cmp, pcode.Register(isa.R3))
	if len(defs) != 2 {
		t.Fatalf("defs at loop header = %v, want init+increment", defs)
	}
}

func TestStackSlotSpillReload(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		f.LI(isa.R3, 42)
		f.SW(isa.SP, -8, isa.R3) // spill
		f.LI(isa.R3, 0)          // clobber
		f.LW(isa.R4, isa.SP, -8) // reload
		f.Ret()
	})
	store := opAt(fn, pcode.STORE, 0)
	load := opAt(fn, pcode.LOAD, 0)
	slotS, okS := du.Slot(store)
	slotL, okL := du.Slot(load)
	if !okS || !okL {
		t.Fatal("stack slots not resolved")
	}
	if slotS != slotL {
		t.Fatalf("spill and reload slots differ: %v vs %v", slotS, slotL)
	}
	defs := du.ReachingDefs(load, slotL)
	if len(defs) != 1 || defs[0] != store {
		t.Errorf("slot defs at reload = %v, want [%d]", defs, store)
	}
}

func TestUnresolvableSlot(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		f.LW(isa.R3, isa.R1, 0) // base is a parameter, not SP
		f.Ret()
	})
	load := opAt(fn, pcode.LOAD, 0)
	if _, ok := du.Slot(load); ok {
		t.Error("non-SP-based load resolved to a slot")
	}
}

func TestIsParamLive(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		f.Mov(isa.R3, isa.R1) // op0: r1 still holds the parameter
		f.LI(isa.R1, 5)       // op1: r1 clobbered
		f.Mov(isa.R4, isa.R1) // op2: r1 is no longer the parameter
		f.Ret()
	})
	r1 := pcode.Register(isa.R1)
	if !du.IsParamLive(0, r1) {
		t.Error("param not live at op0")
	}
	if du.IsParamLive(2, r1) {
		t.Error("param live after clobber")
	}
	_ = fn
}

func TestCallOutputIsADef(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		f.CallImport("nvram_get", 1) // defines r1
		f.Mov(isa.R3, isa.R1)
		f.Ret()
	})
	call := opAt(fn, pcode.CALL, 0)
	defs := du.ReachingDefs(call+1, pcode.Register(isa.R1))
	if len(defs) != 1 || defs[0] != call {
		t.Errorf("defs of r1 after call = %v, want [%d]", defs, call)
	}
}

// TestSpillOverwriteKills: a second store to the same slot kills the first
// definition; only the overwrite reaches the reload.
func TestSpillOverwriteKills(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		f.LI(isa.R3, 1)
		f.SW(isa.SP, -8, isa.R3)
		f.LI(isa.R3, 2)
		f.SW(isa.SP, -8, isa.R3) // overwrites the first spill
		f.LW(isa.R4, isa.SP, -8)
		f.Ret()
	})
	second := opAt(fn, pcode.STORE, 1)
	load := opAt(fn, pcode.LOAD, 0)
	slot, ok := du.Slot(load)
	if !ok {
		t.Fatal("reload slot not resolved")
	}
	defs := du.ReachingDefs(load, slot)
	if len(defs) != 1 || defs[0] != second {
		t.Errorf("slot defs at reload = %v, want [%d]", defs, second)
	}
}

// TestDistinctSlotsIndependent: stores to different offsets define
// different slots; each reload sees only its own spill.
func TestDistinctSlotsIndependent(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		f.LI(isa.R3, 1)
		f.SW(isa.SP, -8, isa.R3)
		f.LI(isa.R3, 2)
		f.SW(isa.SP, -12, isa.R3)
		f.LW(isa.R4, isa.SP, -8)
		f.LW(isa.R5, isa.SP, -12)
		f.Ret()
	})
	st8, st12 := opAt(fn, pcode.STORE, 0), opAt(fn, pcode.STORE, 1)
	ld8, ld12 := opAt(fn, pcode.LOAD, 0), opAt(fn, pcode.LOAD, 1)
	slot8, ok8 := du.Slot(ld8)
	slot12, ok12 := du.Slot(ld12)
	if !ok8 || !ok12 {
		t.Fatal("slots not resolved")
	}
	if slot8 == slot12 {
		t.Fatal("distinct offsets resolved to the same slot")
	}
	if defs := du.ReachingDefs(ld8, slot8); len(defs) != 1 || defs[0] != st8 {
		t.Errorf("slot -8 defs = %v, want [%d]", defs, st8)
	}
	if defs := du.ReachingDefs(ld12, slot12); len(defs) != 1 || defs[0] != st12 {
		t.Errorf("slot -12 defs = %v, want [%d]", defs, st12)
	}
}

// TestSpillReachesThroughBranch: a spill before a diamond reaches the
// reload at the join through both arms, and an arm re-spilling the slot
// adds a second reaching definition instead of replacing the first.
func TestSpillReachesThroughBranch(t *testing.T) {
	fn, du := lift(t, func(f *asm.FuncBuilder) {
		join := f.NewLabel()
		f.LI(isa.R3, 1)
		f.SW(isa.SP, -8, isa.R3)
		f.LI(isa.R5, 0)
		f.Beq(isa.R1, isa.R5, join)
		f.LI(isa.R3, 2)
		f.SW(isa.SP, -8, isa.R3) // taken arm re-spills
		f.Bind(join)
		f.LW(isa.R4, isa.SP, -8)
		f.Ret()
	})
	st1, st2 := opAt(fn, pcode.STORE, 0), opAt(fn, pcode.STORE, 1)
	load := opAt(fn, pcode.LOAD, 0)
	slot, ok := du.Slot(load)
	if !ok {
		t.Fatal("reload slot not resolved")
	}
	defs := du.ReachingDefs(load, slot)
	want := map[int]bool{st1: true, st2: true}
	if len(defs) != 2 || !want[defs[0]] || !want[defs[1]] {
		t.Errorf("slot defs at join = %v, want {%d, %d}", defs, st1, st2)
	}
}
