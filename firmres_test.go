package firmres

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"firmres/internal/corpus"
)

func packedDevice(t *testing.T, id int) []byte {
	t.Helper()
	img, err := corpus.BuildImage(corpus.Device(id))
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	return img.Pack()
}

func TestAnalyzeImagePublicAPI(t *testing.T) {
	report, err := AnalyzeImage(packedDevice(t, 17))
	if err != nil {
		t.Fatalf("AnalyzeImage: %v", err)
	}
	if report.Executable != "/bin/cloudd" {
		t.Errorf("executable = %q", report.Executable)
	}
	if len(report.Messages) == 0 {
		t.Fatal("no messages reconstructed")
	}
	var flagged int
	for _, m := range report.Messages {
		if m.Flagged {
			flagged++
		}
		if m.Function == "" || m.Deliver == "" {
			t.Errorf("message metadata incomplete: %+v", m)
		}
	}
	if flagged == 0 {
		t.Error("no flagged messages on a vulnerable device")
	}
	if report.ClusterCounts["0.5"] > report.ClusterCounts["0.7"] {
		t.Errorf("cluster counts inverted: %v", report.ClusterCounts)
	}
	if len(report.StageTimings) != 5 {
		t.Errorf("stage timings = %v", report.StageTimings)
	}
}

func TestAnalyzeImageRejectsCorrupt(t *testing.T) {
	if _, err := AnalyzeImage([]byte("garbage")); err == nil {
		t.Error("corrupt image accepted")
	}
}

func TestAnalyzeImageScriptOnly(t *testing.T) {
	_, err := AnalyzeImage(packedDevice(t, 22))
	if !errors.Is(err, ErrNoDeviceCloudExecutable) {
		t.Errorf("err = %v, want ErrNoDeviceCloudExecutable", err)
	}
}

func TestAnalyzeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "firmware.bin")
	if err := os.WriteFile(path, packedDevice(t, 5), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := AnalyzeFile(path)
	if err != nil {
		t.Fatalf("AnalyzeFile: %v", err)
	}
	if report.Device == "" {
		t.Error("device metadata missing")
	}
	if _, err := AnalyzeFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMessagesSortedDeterministically(t *testing.T) {
	r1, err := AnalyzeImage(packedDevice(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AnalyzeImage(packedDevice(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Messages) != len(r2.Messages) {
		t.Fatal("nondeterministic message count")
	}
	for i := range r1.Messages {
		if r1.Messages[i].Function != r2.Messages[i].Function ||
			r1.Messages[i].Body != r2.Messages[i].Body {
			t.Fatalf("nondeterministic order/content at %d", i)
		}
	}
}

func TestLabels(t *testing.T) {
	labels := Labels()
	if len(labels) != 7 || labels[len(labels)-1] != "None" {
		t.Errorf("Labels = %v", labels)
	}
	// Mutating the copy must not affect the canonical list.
	labels[0] = "mutated"
	if Labels()[0] == "mutated" {
		t.Error("Labels leaks internal slice")
	}
}
