package firmres

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"firmres/internal/corpus"
)

func packedDevice(t *testing.T, id int) []byte {
	t.Helper()
	img, err := corpus.BuildImage(corpus.Device(id))
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	return img.Pack()
}

func TestAnalyzeImagePublicAPI(t *testing.T) {
	report, err := AnalyzeImage(packedDevice(t, 17))
	if err != nil {
		t.Fatalf("AnalyzeImage: %v", err)
	}
	if report.Executable != "/bin/cloudd" {
		t.Errorf("executable = %q", report.Executable)
	}
	if len(report.Messages) == 0 {
		t.Fatal("no messages reconstructed")
	}
	var flagged int
	for _, m := range report.Messages {
		if m.Flagged {
			flagged++
		}
		if m.Function == "" || m.Deliver == "" {
			t.Errorf("message metadata incomplete: %+v", m)
		}
	}
	if flagged == 0 {
		t.Error("no flagged messages on a vulnerable device")
	}
	if report.ClusterCounts["0.5"] > report.ClusterCounts["0.7"] {
		t.Errorf("cluster counts inverted: %v", report.ClusterCounts)
	}
	if len(report.StageTimings) != 7 {
		t.Errorf("stage timings = %v", report.StageTimings)
	}
}

func TestAnalyzeImageWithLint(t *testing.T) {
	data := packedDevice(t, 11)
	report, err := AnalyzeImage(data, WithLint())
	if err != nil {
		t.Fatalf("AnalyzeImage: %v", err)
	}
	got := map[string]bool{}
	for _, d := range report.Diagnostics {
		got[d.Rule+"@"+d.Function] = true
		if d.Executable != "/bin/cloudd" || d.Severity == "" || d.Message == "" {
			t.Errorf("diagnostic incomplete: %+v", d)
		}
	}
	for _, want := range []string{"hardcoded-secret@svc_auth_fallback", "dead-store@svc_stats_tick"} {
		if !got[want] {
			t.Errorf("missing seeded diagnostic %s in %v", want, got)
		}
	}

	// Without WithLint the stage is skipped and the report carries none.
	plain, err := AnalyzeImage(data)
	if err != nil {
		t.Fatalf("AnalyzeImage: %v", err)
	}
	if len(plain.Diagnostics) != 0 {
		t.Errorf("lint ran without WithLint: %v", plain.Diagnostics)
	}

	// Rule selection narrows the output; unknown rules fail the analysis.
	only, err := AnalyzeImage(data, WithLintRules("dead-store"))
	if err != nil {
		t.Fatalf("AnalyzeImage: %v", err)
	}
	for _, d := range only.Diagnostics {
		if d.Rule != "dead-store" {
			t.Errorf("rule filter leaked %s", d.Rule)
		}
	}
	if len(only.Diagnostics) == 0 {
		t.Error("dead-store selection found nothing on device 11")
	}
	if _, err := AnalyzeImage(data, WithLintRules("no-such-rule")); err == nil {
		t.Error("unknown lint rule accepted")
	}
}

func TestDiagnosticsDeterministic(t *testing.T) {
	data := packedDevice(t, 11)
	run := func() []Diagnostic {
		report, err := AnalyzeImage(data, WithLint())
		if err != nil {
			t.Fatalf("AnalyzeImage: %v", err)
		}
		return report.Diagnostics
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no diagnostics on seeded device")
	}
	if len(a) != len(b) {
		t.Fatalf("diagnostic counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]) {
			t.Errorf("diagnostic %d differs across runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestAnalyzeImageRejectsCorrupt(t *testing.T) {
	if _, err := AnalyzeImage([]byte("garbage")); err == nil {
		t.Error("corrupt image accepted")
	}
}

func TestAnalyzeImageScriptOnly(t *testing.T) {
	_, err := AnalyzeImage(packedDevice(t, 22))
	if !errors.Is(err, ErrNoDeviceCloudExecutable) {
		t.Errorf("err = %v, want ErrNoDeviceCloudExecutable", err)
	}
}

func TestAnalyzeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "firmware.bin")
	if err := os.WriteFile(path, packedDevice(t, 5), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := AnalyzeFile(path)
	if err != nil {
		t.Fatalf("AnalyzeFile: %v", err)
	}
	if report.Device == "" {
		t.Error("device metadata missing")
	}
	if _, err := AnalyzeFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMessagesSortedDeterministically(t *testing.T) {
	r1, err := AnalyzeImage(packedDevice(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AnalyzeImage(packedDevice(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Messages) != len(r2.Messages) {
		t.Fatal("nondeterministic message count")
	}
	for i := range r1.Messages {
		if r1.Messages[i].Function != r2.Messages[i].Function ||
			r1.Messages[i].Body != r2.Messages[i].Body {
			t.Fatalf("nondeterministic order/content at %d", i)
		}
	}
}

func TestLabels(t *testing.T) {
	labels := Labels()
	if len(labels) != 7 || labels[len(labels)-1] != "None" {
		t.Errorf("Labels = %v", labels)
	}
	// Mutating the copy must not affect the canonical list.
	labels[0] = "mutated"
	if Labels()[0] == "mutated" {
		t.Error("Labels leaks internal slice")
	}
}
