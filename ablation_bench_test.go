package firmres

// Ablation benchmarks for the design choices DESIGN.md §4 calls out. Each
// toggles one mechanism and reports the quality delta as custom metrics, so
// `go test -bench=Ablation` records the trade-off next to the timing.

import (
	"testing"

	"firmres/internal/corpus"
	"firmres/internal/fields"
	"firmres/internal/mft"
	"firmres/internal/nn"
	"firmres/internal/pcode"
	"firmres/internal/semantics"
	"firmres/internal/slices"
	"firmres/internal/taint"
)

// ablationProgram lifts the device-cloud binary of a corpus device.
func ablationProgram(b *testing.B, id int) (*corpus.DeviceSpec, *pcode.Program) {
	b.Helper()
	spec := corpus.Device(id)
	bin, err := corpus.EmitDeviceCloudBinary(spec)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pcode.LiftProgram(bin)
	if err != nil {
		b.Fatal(err)
	}
	return spec, prog
}

// BenchmarkAblationOverTaint compares the paper's over-taint strategy
// (raw-STORE channel on) against precise taint. Over-taint keeps recall at
// 100% (no missed fields, §V-C) and pays with the noise false positives;
// precise taint is clean but structurally under-approximates.
func BenchmarkAblationOverTaint(b *testing.B) {
	spec, prog := ablationProgram(b, 11) // device 11: 24 planted noise fields
	for _, mode := range []struct {
		name string
		opts taint.Options
	}{
		{"overtaint", taint.Options{}},
		{"precise", taint.Options{NoStoreChannel: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var real, noise int
			for i := 0; i < b.N; i++ {
				real, noise = 0, 0
				for _, m := range taint.NewEngine(prog, mode.opts).Analyze() {
					for _, leaf := range m.Fields() {
						if leaf.Kind == taint.LeafNumeric {
							noise++
						} else {
							real++
						}
					}
				}
			}
			b.ReportMetric(float64(real), "real_fields")
			b.ReportMetric(float64(noise), "noise_fields")
			total := real + noise
			if total > 0 {
				b.ReportMetric(100*float64(real)/float64(total), "precision_pct")
			}
			_ = spec
		})
	}
}

// BenchmarkAblationEnrichment compares classification over fully enriched
// slices (symbols, constants, key hints) against raw opcode token streams.
func BenchmarkAblationEnrichment(b *testing.B) {
	spec, prog := ablationProgram(b, 17)
	var sls []slices.Slice
	for _, m := range taint.NewEngine(prog, taint.Options{}).Analyze() {
		sls = append(sls, slices.Generate(mft.Simplify(m))...)
	}
	score := func(tokens func(slices.Slice) []string) float64 {
		correct, total := 0, 0
		for _, s := range sls {
			truth, planted, isValue := corpus.TruthLabelDetail(spec, s)
			if !planted || !isValue {
				continue
			}
			total++
			if got, _ := semantics.ClassifyTokens(tokens(s)); got == truth {
				correct++
			}
		}
		if total == 0 {
			return 0
		}
		return 100 * float64(correct) / float64(total)
	}

	b.Run("enriched", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc = score(semantics.Tokens)
		}
		b.ReportMetric(acc, "accuracy_pct")
	})
	b.Run("raw", func(b *testing.B) {
		raw := func(s slices.Slice) []string {
			var out []string
			for _, step := range s.Steps {
				out = append(out, nn.Tokenize(step.Fn.Ops[step.OpIdx].Code.String())...)
			}
			return out
		}
		var acc float64
		for i := 0; i < b.N; i++ {
			acc = score(raw)
		}
		b.ReportMetric(acc, "accuracy_pct")
	})
}

// BenchmarkAblationInversion measures field-order recovery with and without
// the MFT inversion of Fig. 5: without it, the backward-built tree renders
// fields in reverse concatenation order and the messages no longer match
// what the firmware sends.
func BenchmarkAblationInversion(b *testing.B) {
	spec, prog := ablationProgram(b, 17)
	resolver := &fields.MapResolver{
		NVRAM:  corpus.NVRAMDefaults(spec).Map(),
		Config: corpus.CloudConfig(spec).Map(),
	}
	build := func(invert bool) (match, total int) {
		for _, m := range taint.NewEngine(prog, taint.Options{}).Analyze() {
			tree := mft.Simplify(m)
			if !invert {
				// Claim the tree is already inverted so Build skips the
				// Fig. 5 inversion and renders backward order.
				tree.Inverted = true
			}
			msg := fields.Build(tree, nil, resolver)
			if msg.Discarded {
				continue
			}
			total++
			if wellOrdered(msg) {
				match++
			}
		}
		return match, total
	}
	for _, mode := range []struct {
		name   string
		invert bool
	}{{"inverted", true}, {"backward", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var match, total int
			for i := 0; i < b.N; i++ {
				match, total = build(mode.invert)
			}
			if total > 0 {
				b.ReportMetric(100*float64(match)/float64(total), "ordered_pct")
			}
		})
	}
}

// wellOrdered checks the rendered route/body shape: query messages must
// lead with their route and carry key=value pairs in key-first order.
func wellOrdered(msg *fields.Message) bool {
	body := msg.Body
	if msg.Path != "" {
		body = msg.Path + body
	}
	if len(body) == 0 {
		return false
	}
	switch body[0] {
	case '/', '?', '{':
		return true
	}
	return false
}

// BenchmarkAblationClusterThreshold sweeps the §IV-C similarity threshold
// and reports the delimiter cluster counts (Table II columns 5-7 and
// beyond).
func BenchmarkAblationClusterThreshold(b *testing.B) {
	_, prog := ablationProgram(b, 14)
	subs, _ := slices.FormatSubstrings(taint.NewEngine(prog, taint.Options{}).Analyze())
	if len(subs) == 0 {
		b.Fatal("no format substrings")
	}
	for _, thd := range []float64{0.4, 0.5, 0.6, 0.7, 0.8} {
		thd := thd
		b.Run(formatThd(thd), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				n = len(slices.Cluster(subs, thd))
			}
			b.ReportMetric(float64(n), "clusters")
			b.ReportMetric(float64(len(subs)), "substrings")
		})
	}
}

func formatThd(thd float64) string {
	return map[float64]string{0.4: "thd0.4", 0.5: "thd0.5", 0.6: "thd0.6",
		0.7: "thd0.7", 0.8: "thd0.8"}[thd]
}

// BenchmarkAblationClassifier compares the keyword dictionary against the
// trained TextCNN on held-out evaluation devices.
func BenchmarkAblationClassifier(b *testing.B) {
	model, _, _, err := trainSmallModel()
	if err != nil {
		b.Fatal(err)
	}
	spec, prog := ablationProgram(b, 19)
	var sls []slices.Slice
	for _, m := range taint.NewEngine(prog, taint.Options{}).Analyze() {
		sls = append(sls, slices.Generate(mft.Simplify(m))...)
	}
	evaluate := func(c semantics.Classifier) float64 {
		correct, total := 0, 0
		for _, s := range sls {
			truth, planted, isValue := corpus.TruthLabelDetail(spec, s)
			if !planted || !isValue {
				continue
			}
			total++
			if got, _ := c.Classify(s); got == truth {
				correct++
			}
		}
		if total == 0 {
			return 0
		}
		return 100 * float64(correct) / float64(total)
	}
	b.Run("keyword", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc = evaluate(&semantics.KeywordClassifier{})
		}
		b.ReportMetric(acc, "accuracy_pct")
	})
	b.Run("textcnn", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc = evaluate(&semantics.ModelClassifier{Model: model})
		}
		b.ReportMetric(acc, "accuracy_pct")
	})
}

// trainSmallModel builds a compact TextCNN for the classifier ablation.
var trainedModel *nn.Model

func trainSmallModel() (*nn.Model, float64, float64, error) {
	if trainedModel != nil {
		return trainedModel, 0, 0, nil
	}
	examples, err := trainingExamples()
	if err != nil {
		return nil, 0, 0, err
	}
	model, val, test, err := semantics.TrainModel(examples, nn.Config{
		EmbedDim: 16, Filters: 8, MaxLen: 48, Epochs: 5, Seed: 7,
	})
	if err == nil {
		trainedModel = model
	}
	return model, val, test, err
}

func trainingExamples() ([]semantics.Example, error) {
	var out []semantics.Example
	for i := 0; i < 8; i++ {
		spec := corpus.TrainingDevice(140 + i)
		bin, err := corpus.EmitDeviceCloudBinary(spec)
		if err != nil {
			return nil, err
		}
		prog, err := pcode.LiftProgram(bin)
		if err != nil {
			return nil, err
		}
		for _, m := range taint.NewEngine(prog, taint.Options{}).Analyze() {
			for _, s := range slices.Generate(mft.Simplify(m)) {
				label, planted := corpus.TruthLabel(spec, s)
				if !planted {
					label = semantics.LabelNone
				}
				out = append(out, semantics.Example{Tokens: semantics.Tokens(s), Label: label})
			}
		}
	}
	return out, nil
}

// BenchmarkAblationAttention compares the plain TextCNN against the variant
// with the self-attention context branch (the paper's MHSA component),
// reporting held-out accuracy of both under the same budget.
func BenchmarkAblationAttention(b *testing.B) {
	examples, err := trainingExamples()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		cfg  nn.Config
	}{
		{"textcnn", nn.Config{EmbedDim: 16, Filters: 8, MaxLen: 48, Epochs: 4, Seed: 7}},
		{"textcnn+attention", nn.Config{EmbedDim: 16, Filters: 8, MaxLen: 48, Epochs: 4, Seed: 7,
			Attention: true, AttnDim: 8}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var val, test float64
			for i := 0; i < b.N; i++ {
				var err error
				_, val, test, err = semantics.TrainModel(examples, mode.cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*val, "val_acc_pct")
			b.ReportMetric(100*test, "test_acc_pct")
		})
	}
}
