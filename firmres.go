// Package firmres reconstructs device-cloud messages from IoT firmware
// images through static analysis, reproducing "FIRMRES: Exposing Broken
// Device-Cloud Access Control in IoT Through Static Firmware Analysis"
// (DSN 2024).
//
// Given a firmware image, the analysis pinpoints the device-cloud
// executable by finding asynchronous request handlers, traces message
// delivery callsites backwards to the sources of every message field,
// builds a Message Field Tree, recovers field semantics (Dev-Identifier,
// Dev-Secret, User-Cred, Bind-Token, Signature, Address), reconstructs the
// concrete messages in field order, and flags messages whose access-control
// primitives are missing or hard-coded.
//
// Quick start:
//
//	report, err := firmres.AnalyzeImage(firmwareBytes)
//	if err != nil { ... }
//	for _, msg := range report.Messages {
//	    fmt.Println(msg.Path, msg.Body, msg.Verdict)
//	}
package firmres

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"firmres/internal/core"
	"firmres/internal/errdefs"
	"firmres/internal/lint"
	"firmres/internal/nn"
	"firmres/internal/semantics"
)

// Field is one reconstructed message field.
type Field struct {
	Key        string  // recovered key text ("mac", "deviceId", "&sn=")
	Semantics  string  // primitive label (see Labels)
	Confidence float64 // classifier confidence
	Source     string  // source kind: const-string, nvram, config, env, file, dynamic, const-numeric
	SourceKey  string  // NVRAM/config/env key or file path
	Value      string  // rendered concrete value
}

// Message is one reconstructed device-cloud message.
type Message struct {
	Function  string // firmware function constructing the message
	Context   string // wrapper caller context ("" when constructed in place)
	Deliver   string // delivery function (SSL_write, mqtt_publish, ...)
	Format    string // json / query / mqtt / http / raw
	Topic     string // MQTT topic
	Path      string // HTTP path or query route
	Body      string // rendered message body
	Fields    []Field
	Discarded bool   // dropped by the LAN-address filter
	Flagged   bool   // marked by the message form check
	Verdict   string // ok / missing-primitives / hardcoded-secret / no-primitives
	Detail    string // human-readable finding
}

// Diagnostic is one lint-pass finding over the device-cloud executable: a
// security- or correctness-relevant code shape proven by the static
// analyses (constant propagation, dominators, def-use), reported against
// the function containing it.
type Diagnostic struct {
	Rule       string   // checker rule name ("hardcoded-secret", ...)
	Severity   string   // error / warning / info
	Executable string   // executable path the finding is in
	Function   string   // containing function
	Addr       uint64   // instruction address of the finding
	Message    string   // human-readable finding
	Evidence   []string `json:",omitempty"` // key=value proof fragments
}

// AnalysisError records one piece of work the pipeline skipped or
// abandoned while producing a partial Report: a corrupt executable, a
// timed-out stage, a recovered panic. Err wraps one of the package's
// sentinel errors, so errors.Is dispatch works; Detail carries the rendered
// cause for JSON output.
type AnalysisError struct {
	Stage  string `json:"stage"`          // pipeline stage ("identify-fields", ...)
	Path   string `json:"path,omitempty"` // executable involved, "" when stage-wide
	Kind   string `json:"kind"`           // taxonomy slug ("stage-timeout", ...)
	Detail string `json:"detail"`         // human-readable cause
	Err    error  `json:"-"`              // underlying cause for errors.Is / errors.As
}

// Error renders the failure.
func (e AnalysisError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("%s: %s: %s", e.Stage, e.Path, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Stage, e.Detail)
}

// Unwrap exposes the cause.
func (e AnalysisError) Unwrap() error { return e.Err }

// Report is the analysis result for one firmware image.
type Report struct {
	Device        string
	Version       string
	Executable    string // identified device-cloud executable path
	Messages      []Message
	ClusterCounts map[string]int // "0.5"/"0.6"/"0.7" -> delimiter clusters; nil without sprintf
	StageTimings  map[string]time.Duration
	// Metrics is the work-derived counter/histogram snapshot of the
	// analysis; populated only under WithMetrics. Keys are Prometheus-style
	// (`taint_mfts_total`, `facts_requests_total{artifact="cfg"}`,
	// histograms expanded to _count/_sum/_min/_max). Values depend only on
	// the work performed, so snapshots are identical at any WithWorkers
	// count.
	Metrics map[string]int64 `json:",omitempty"`
	// Diagnostics lists the lint-pass findings over the identified
	// executable, deduplicated and deterministically ordered. Populated only
	// when WithLint is set.
	Diagnostics []Diagnostic `json:",omitempty"`
	// Errors lists the work the pipeline skipped or abandoned while
	// degrading gracefully. Empty for a clean run; see Partial.
	Errors []AnalysisError `json:",omitempty"`
	// Probe is the §V replay report: every reconstructed message probed
	// against a simulated cloud and terminally classified. Populated only
	// under WithProbe; probe-less reports are byte-identical to builds
	// without the stage.
	Probe *ProbeReport `json:",omitempty"`
	// Recovery describes the symbol-free recovery pass over the identified
	// executable: function boundaries rebuilt, string constants rediscovered,
	// and extern identities bound by behavioral signature, each binding with
	// a confidence score. Populated only when the executable arrived
	// stripped (or WithStrippedMode forced the pass and it had work to do);
	// symbol-full reports stay byte-identical. When a stripped verdict
	// diverges from its symbol-full twin, the low-confidence bindings and
	// notes here are the explanation.
	Recovery *RecoveryReport `json:",omitempty"`
}

// RecoveryBinding records how one stripped import was identified — or why
// it was left unbound.
type RecoveryBinding struct {
	Import     int     `json:"import"`             // import-table index
	Name       string  `json:"name,omitempty"`     // bound extern name, "" when unbound
	Arity      int     `json:"arity"`              // observed callsite arity
	Sites      int     `json:"sites"`              // callsites observed
	Confidence float64 `json:"confidence"`         // 0..1, margin-normalized
	Evidence   string  `json:"evidence,omitempty"` // human-readable rationale
}

// RecoveryReport summarizes the symbol-free recovery pass (WithStrippedMode)
// over the identified executable.
type RecoveryReport struct {
	Binary           string            `json:"binary"`
	FuncsRecovered   int               `json:"funcs_recovered"`
	StringsRecovered int               `json:"strings_recovered"`
	ExternsTotal     int               `json:"externs_total"`
	ExternsBound     int               `json:"externs_bound"`
	Bindings         []RecoveryBinding `json:"bindings,omitempty"`
	// Confidence is the binding-confidence histogram, bucket label
	// ("0.8-1.0", ...) to count.
	Confidence map[string]int `json:"confidence,omitempty"`
	Notes      []string       `json:"notes,omitempty"`
}

// Partial reports whether the analysis degraded — some executables or
// stages were skipped and recorded in Errors.
func (r *Report) Partial() bool { return len(r.Errors) > 0 }

// Labels lists the semantic classes in canonical order.
func Labels() []string { return append([]string(nil), semantics.Labels...) }

// StageNames lists the pipeline stage names in execution order — the keys
// of Report.StageTimings.
func StageNames() []string {
	stages := core.Stages()
	out := make([]string, len(stages))
	for i, s := range stages {
		out[i] = s.String()
	}
	return out
}

// Sentinel errors of the analysis taxonomy. Every error the package
// returns, and every Report.Errors entry, wraps one of these; dispatch
// with errors.Is.
var (
	// ErrNoDeviceCloudExecutable is returned when no binary in the image
	// hosts an asynchronous request handler (script-only cloud agents).
	ErrNoDeviceCloudExecutable = errdefs.ErrNoDeviceCloudExecutable

	// ErrCorruptImage is returned when the firmware image fails structural
	// validation (bad magic, checksum mismatch, truncation).
	ErrCorruptImage = errdefs.ErrCorruptImage

	// ErrStageTimeout marks an analysis stage cancelled by its time budget
	// or by the caller's context. When the caller's context expired it
	// also wraps the context error (context.DeadlineExceeded or
	// context.Canceled).
	ErrStageTimeout = errdefs.ErrStageTimeout

	// ErrStagePanic marks an analysis stage aborted by a recovered panic.
	ErrStagePanic = errdefs.ErrStagePanic

	// ErrExecutableSkipped marks one candidate executable dropped during
	// pinpointing while the rest of the image kept analyzing.
	ErrExecutableSkipped = errdefs.ErrExecutableSkipped
)

// Option configures an analysis.
type Option func(*config)

type config struct {
	opts          core.Options
	err           error // configuration error reported by an Option
	workers       int
	trace         *Trace
	observers     []Observer
	progressW     io.Writer
	cacheDir      string
	cacheMaxBytes int64
	cacheStats    *CacheStats
}

func newConfig(opts []Option) *config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return &cfg
}

// WithKeywordClassifier selects the dictionary-based semantics classifier
// (the default).
func WithKeywordClassifier() Option {
	return func(c *config) { c.opts.Classifier = &semantics.KeywordClassifier{} }
}

// WithModelFile selects a trained TextCNN semantics classifier loaded from
// a model file produced by the training harness.
func WithModelFile(path string) Option {
	return func(c *config) {
		f, err := os.Open(path)
		if err != nil {
			return // fall back to the default classifier
		}
		defer f.Close()
		if model, err := nn.Load(f); err == nil {
			c.opts.Classifier = &semantics.ModelClassifier{Model: model}
		}
	}
}

// WithModel selects an in-memory trained TextCNN classifier.
func WithModel(model *nn.Model) Option {
	return func(c *config) { c.opts.Classifier = &semantics.ModelClassifier{Model: model} }
}

// WithMinHandlerScore sets the minimum string-parsing score a function-call
// sequence needs to count as a request handler (§IV-A).
func WithMinHandlerScore(s float64) Option {
	return func(c *config) { c.opts.MinScore = s }
}

// WithStageTimeout sets a wall-clock budget for each pipeline stage. A
// stage exceeding it — a taint blow-up, a pathological classifier — is
// abandoned and recorded in Report.Errors, and the remaining stages run on
// whatever was recovered. Zero (the default) means no per-stage budget.
func WithStageTimeout(d time.Duration) Option {
	return func(c *config) { c.opts.StageTimeout = d }
}

// WithWorkers bounds the analysis worker pools: batch functions
// (AnalyzeImages, AnalyzePaths, AnalyzeDir) analyze up to n images
// concurrently, and within each image the pipeline stages fan out on up to
// n goroutines. n <= 0 (the default) selects runtime.GOMAXPROCS; 1 runs
// everything sequentially. The analysis pools are compute-bound, so n is
// additionally clamped to runtime.GOMAXPROCS — extra goroutines cannot
// help and only add coordination cost (probe-stage replays, which block,
// are bounded separately by probe.Options.Probers). Reports are
// byte-identical at any worker count.
func WithWorkers(n int) Option {
	return func(c *config) {
		c.workers = n
		c.opts.Workers = n
	}
}

// WithReleaseFacts frees each image's program-facts store (per-function
// CFG, def-use, constant propagation) as soon as its report is built, the
// same lifetime trim the batch functions apply between corpus images. Use
// it for long-running processes — analysis services, daemons — where many
// sequential AnalyzeImage calls must not accumulate per-image artifacts.
// The option never changes report contents or the cache key.
func WithReleaseFacts() Option {
	return func(c *config) { c.opts.ReleaseFacts = true }
}

// WithLint enables the lint-pass stage: pluggable checkers run over every
// lifted function of the identified executable and report Diagnostics.
func WithLint() Option {
	return func(c *config) { c.opts.Lint = true }
}

// WithStrippedMode declares the corpus symbol-stripped: every candidate
// executable runs the symbol-free recovery pass (function-boundary
// recovery, string rediscovery, signature-based extern identification)
// before lifting, and the mode is folded into the analysis-cache
// fingerprint. Binaries that arrive without function symbols or with
// nameless imports are recovered automatically even without this option;
// on symbol-full binaries the pass is a no-op, so symbol-full reports are
// unchanged either way. The pass's outcome is reported in Report.Recovery.
func WithStrippedMode() Option {
	return func(c *config) { c.opts.Stripped = true }
}

// WithLintRules enables the lint-pass stage restricted to the named rules.
// An unknown rule name fails the analysis with a configuration error.
func WithLintRules(rules ...string) Option {
	return func(c *config) {
		c.opts.Lint = true
		c.opts.LintRules = rules
	}
}

// LintRules lists the registered lint rule names in sorted order.
func LintRules() []string { return lint.Rules() }

// WriteSARIF renders lint diagnostics as a SARIF 2.1.0 document (one run,
// driver "firmres-lint"), deterministically ordered.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	conv := make([]lint.Diagnostic, 0, len(diags))
	for _, d := range diags {
		conv = append(conv, lint.Diagnostic{
			Rule:       d.Rule,
			Severity:   lint.ParseSeverity(d.Severity),
			Executable: d.Executable,
			Function:   d.Function,
			Addr:       uint32(d.Addr),
			Message:    d.Message,
			Evidence:   d.Evidence,
		})
	}
	return lint.WriteSARIF(w, conv)
}

// AnalyzeImage analyzes a packed firmware image.
func AnalyzeImage(data []byte, opts ...Option) (*Report, error) {
	return AnalyzeImageContext(context.Background(), data, opts...)
}

// AnalyzeImageContext analyzes a packed firmware image under ctx. The
// analysis degrades gracefully: corrupt executables and over-budget stages
// (see WithStageTimeout) are recorded in Report.Errors while the rest of
// the pipeline keeps running. The error return is reserved for fatal
// conditions — a structurally corrupt image (wrapping ErrCorruptImage), an
// expired or cancelled ctx (wrapping ErrStageTimeout and the context
// error), or an image with no device-cloud executable.
//
// With WithCache the report is served from the persistent result cache
// when the same image bytes were already analyzed under the same effective
// options and pipeline version; cached and fresh reports are identical.
func AnalyzeImageContext(ctx context.Context, data []byte, opts ...Option) (*Report, error) {
	cfg := newConfig(opts)
	cfg.observe(1)
	rn, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	defer rn.finish()
	return rn.analyzeData(ctx, data)
}

// AnalyzeFile analyzes a firmware image file on disk.
func AnalyzeFile(path string, opts ...Option) (*Report, error) {
	return AnalyzeFileContext(context.Background(), path, opts...)
}

// AnalyzeFileContext analyzes a firmware image file on disk under ctx,
// with the same degradation contract as AnalyzeImageContext.
func AnalyzeFileContext(ctx context.Context, path string, opts ...Option) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("firmres: %w", err)
	}
	return AnalyzeImageContext(ctx, data, opts...)
}

func reportOf(res *core.Result) *Report {
	r := &Report{
		Device:       res.Device,
		Version:      res.Version,
		Executable:   res.Executable,
		StageTimings: map[string]time.Duration{},
		Metrics:      res.Metrics,
	}
	if res.Probe != nil {
		r.Probe = probeReportOf(res.Probe)
	}
	if res.Recovery != nil {
		rec := &RecoveryReport{
			Binary:           res.Recovery.Binary,
			FuncsRecovered:   res.Recovery.FuncsRecovered,
			StringsRecovered: res.Recovery.StringsRecovered,
			ExternsTotal:     res.Recovery.ExternsTotal,
			ExternsBound:     res.Recovery.ExternsBound,
			Confidence:       res.Recovery.Confidence,
			Notes:            res.Recovery.Notes,
		}
		for _, b := range res.Recovery.Bindings {
			rec.Bindings = append(rec.Bindings, RecoveryBinding{
				Import:     b.Import,
				Name:       b.Name,
				Arity:      b.Arity,
				Sites:      b.Sites,
				Confidence: b.Confidence,
				Evidence:   b.Evidence,
			})
		}
		r.Recovery = rec
	}
	for s := core.StagePinpoint; s < core.Stage(len(res.Timing)); s++ {
		r.StageTimings[s.String()] = res.Timing[s]
	}
	if res.ClusterCounts != nil {
		r.ClusterCounts = map[string]int{}
		for thd, n := range res.ClusterCounts {
			r.ClusterCounts[fmt.Sprintf("%.1f", thd)] = n
		}
	}
	for _, ae := range res.Errors {
		r.Errors = append(r.Errors, AnalysisError{
			Stage:  ae.Stage,
			Path:   ae.Path,
			Kind:   ae.Kind(),
			Detail: ae.Err.Error(),
			Err:    ae.Err,
		})
	}
	// Degradation order depends on scheduling (which stage hit its budget
	// first); sort by stable keys so repeated runs render identically.
	sort.Slice(r.Errors, func(i, j int) bool {
		a, b := r.Errors[i], r.Errors[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Detail < b.Detail
	})
	for _, d := range res.Diagnostics {
		r.Diagnostics = append(r.Diagnostics, Diagnostic{
			Rule:       d.Rule,
			Severity:   d.Severity.String(),
			Executable: d.Executable,
			Function:   d.Function,
			Addr:       uint64(d.Addr),
			Message:    d.Message,
			Evidence:   d.Evidence,
		})
	}
	core.SortMessagesByFunction(res.Messages)
	for i := range res.Messages {
		mr := &res.Messages[i]
		msg := Message{
			Function:  mr.Message.Function,
			Context:   mr.Message.Context,
			Deliver:   mr.Message.Deliver,
			Format:    mr.Message.Format.String(),
			Topic:     mr.Message.Topic,
			Path:      mr.Message.Path,
			Body:      mr.Message.Body,
			Discarded: mr.Message.Discarded,
			Flagged:   mr.Flagged(),
			Verdict:   mr.Finding.Verdict.String(),
			Detail:    mr.Finding.Detail,
		}
		if mr.Message.Discarded {
			msg.Detail = mr.Message.Reason
			msg.Verdict = "discarded"
		}
		for _, f := range mr.Message.Fields {
			msg.Fields = append(msg.Fields, Field{
				Key:        f.Key,
				Semantics:  f.Semantics,
				Confidence: f.Confidence,
				Source:     f.Source.String(),
				SourceKey:  f.SourceKey,
				Value:      f.Value,
			})
		}
		r.Messages = append(r.Messages, msg)
	}
	return r
}
