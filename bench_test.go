package firmres

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus micro-benchmarks of the pipeline stages. Aggregate
// counts are attached as custom metrics so `go test -bench` output records
// the reproduced table values next to the timings.
//
// See EXPERIMENTS.md for the paper-vs-measured discussion.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"firmres/internal/binfmt"
	"firmres/internal/core"
	"firmres/internal/corpus"
	"firmres/internal/experiments"
	"firmres/internal/identify"
	"firmres/internal/lint"
	"firmres/internal/mft"
	"firmres/internal/nn"
	"firmres/internal/pcode"
	"firmres/internal/semantics"
	"firmres/internal/slices"
	"firmres/internal/taint"
)

// sharedRun lazily builds one full corpus analysis reused by the table
// benchmarks (building it inside every iteration would time corpus
// generation, not the experiment).
var (
	runOnce   sync.Once
	sharedRun *experiments.Run
	runErr    error
)

func getSharedRun(b *testing.B) *experiments.Run {
	b.Helper()
	runOnce.Do(func() {
		sharedRun, runErr = experiments.NewRun(experiments.Config{})
	})
	if runErr != nil {
		b.Fatalf("corpus run: %v", runErr)
	}
	return sharedRun
}

// BenchmarkTableI_DeviceCorpus regenerates the Table I device list.
func BenchmarkTableI_DeviceCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI()
		if len(rows) != 22 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	b.ReportMetric(22, "devices")
}

// BenchmarkTableII_ExecutableIdentification measures §V-B: pinpointing the
// device-cloud executable among every binary of one image.
func BenchmarkTableII_ExecutableIdentification(b *testing.B) {
	img, err := corpus.BuildImage(corpus.Device(14)) // largest device
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		found = 0
		for _, f := range img.Executables() {
			if !f.IsBinary() {
				continue
			}
			bin, err := binfmt.Unmarshal(f.Data)
			if err != nil {
				b.Fatal(err)
			}
			prog, err := pcode.LiftProgram(bin)
			if err != nil {
				b.Fatal(err)
			}
			if identify.Analyze(prog).IsDeviceCloud {
				found++
			}
		}
	}
	if found != 1 {
		b.Fatalf("identified %d device-cloud executables, want 1", found)
	}
}

// BenchmarkTableII_MessageReconstruction runs the full pipeline over one
// firmware image (Table II columns 1-2).
func BenchmarkTableII_MessageReconstruction(b *testing.B) {
	img, err := corpus.BuildImage(corpus.Device(17))
	if err != nil {
		b.Fatal(err)
	}
	pipeline := core.New(core.Options{})
	b.ResetTimer()
	var msgs int
	for i := 0; i < b.N; i++ {
		res, err := pipeline.AnalyzeImage(img)
		if err != nil {
			b.Fatal(err)
		}
		msgs = len(res.Messages)
	}
	b.ReportMetric(float64(msgs), "messages")
}

// BenchmarkTableII_FieldIdentification isolates the backward-taint stage
// (Table II columns 3-4; the dominant cost in the paper's breakdown).
func BenchmarkTableII_FieldIdentification(b *testing.B) {
	bin, err := corpus.EmitDeviceCloudBinary(corpus.Device(14))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pcode.LiftProgram(bin)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	fields := 0
	for i := 0; i < b.N; i++ {
		fields = 0
		engine := taint.NewEngine(prog, taint.Options{})
		for _, m := range engine.Analyze() {
			fields += len(m.Fields())
		}
	}
	b.ReportMetric(float64(fields), "fields")
}

// BenchmarkTableII_SemanticsRecovery isolates slice enrichment plus
// classification (Table II columns 5-8).
func BenchmarkTableII_SemanticsRecovery(b *testing.B) {
	bin, err := corpus.EmitDeviceCloudBinary(corpus.Device(13))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pcode.LiftProgram(bin)
	if err != nil {
		b.Fatal(err)
	}
	var allSlices []slices.Slice
	for _, m := range taint.NewEngine(prog, taint.Options{}).Analyze() {
		allSlices = append(allSlices, slices.Generate(mft.Simplify(m))...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kc := &semantics.KeywordClassifier{}
		for _, s := range allSlices {
			kc.Classify(s)
		}
	}
	b.ReportMetric(float64(len(allSlices)), "slices")
}

// BenchmarkModelTraining trains the TextCNN classifier on a small training
// corpus (§V-C network training; paper: 5 h on an RTX 4090 for 30,941
// slices — here a CPU-sized substitute).
func BenchmarkModelTraining(b *testing.B) {
	examples, err := experiments.TrainingExamples(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, err := semantics.TrainModel(examples, nn.Config{
			EmbedDim: 16, Filters: 8, MaxLen: 48, Epochs: 3, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(examples)), "examples")
}

// BenchmarkTableIII_Vulnerabilities probes every flagged message of the
// analyzed corpus with attacker-obtainable values (Table III).
func BenchmarkTableIII_Vulnerabilities(b *testing.B) {
	run := getSharedRun(b)
	b.ResetTimer()
	var res *experiments.TableIIIResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.TableIII(run)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Flagged), "flagged")
	b.ReportMetric(float64(res.Confirmed), "confirmed")
	b.ReportMetric(float64(len(res.Vulns)), "vulns")
}

// BenchmarkTableII_FullCorpus scores the complete Table II over the shared
// corpus analysis.
func BenchmarkTableII_FullCorpus(b *testing.B) {
	run := getSharedRun(b)
	b.ResetTimer()
	var res *experiments.TableIIResult
	for i := 0; i < b.N; i++ {
		res = experiments.TableII(run)
	}
	b.ReportMetric(float64(res.TotalIdentified), "msgs_identified")
	b.ReportMetric(float64(res.TotalValid), "msgs_valid")
	b.ReportMetric(float64(res.TotalFieldsIdent), "fields_identified")
	b.ReportMetric(float64(res.TotalFieldsConf), "fields_confirmed")
	b.ReportMetric(100*res.FieldAccuracy, "field_acc_pct")
	b.ReportMetric(100*res.SemanticsAccuracy, "sem_acc_pct")
}

// BenchmarkTableIV_Comparison runs the tool-comparison experiment.
func BenchmarkTableIV_Comparison(b *testing.B) {
	run := getSharedRun(b)
	b.ResetTimer()
	var rows []experiments.TableIVRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableIV(run)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Interfaces), "firmres_interfaces")
	b.ReportMetric(float64(rows[1].Interfaces), "leakscope_interfaces")
	b.ReportMetric(float64(rows[2].Interfaces), "apiscanner_interfaces")
	b.ReportMetric(100*rows[0].Accuracy, "firmres_acc_pct")
}

// BenchmarkStageBreakdown reproduces the §V-E per-stage shares as metrics.
func BenchmarkStageBreakdown(b *testing.B) {
	run := getSharedRun(b)
	b.ResetTimer()
	var perf *experiments.PerfResult
	for i := 0; i < b.N; i++ {
		perf = experiments.Perf(run)
	}
	names := []string{"pinpoint_pct", "fields_pct", "semantics_pct", "concat_pct", "formcheck_pct"}
	for i, n := range names {
		b.ReportMetric(100*perf.StageShare[i], n)
	}
}

// BenchmarkEndToEndDevice measures the complete per-firmware wall time
// (paper §V-E: 154 s – 1472 s on real firmware; the synthetic substrate is
// orders of magnitude smaller).
func BenchmarkEndToEndDevice(b *testing.B) {
	for _, id := range []int{5, 14, 17} {
		id := id
		b.Run(corpus.Device(id).Model, func(b *testing.B) {
			spec := corpus.Device(id)
			img, err := corpus.BuildImage(spec)
			if err != nil {
				b.Fatal(err)
			}
			pipeline := core.New(core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.AnalyzeImage(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingByMessages shows the §V-E cost drivers: analysis time
// grows with the number of planted messages and fields ("the time cost
// primarily depends on ... the number of device-cloud messages, and the
// number of message fields"). Training-population devices provide the knob.
func BenchmarkScalingByMessages(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("messages-%d", n), func(b *testing.B) {
			spec := corpus.TrainingDevice(900 + n)
			spec.TargetMessages = n
			spec.TargetValid = n
			spec.TargetConfirmed = n * 8
			spec.NoiseFields = n / 2
			corpus.Resynthesize(spec)
			img, err := corpus.BuildImage(spec)
			if err != nil {
				b.Fatal(err)
			}
			pipeline := core.New(core.Options{})
			b.ResetTimer()
			var fields int
			for i := 0; i < b.N; i++ {
				res, err := pipeline.AnalyzeImage(img)
				if err != nil {
					b.Fatal(err)
				}
				fields = 0
				for j := range res.Messages {
					fields += len(res.Messages[j].Message.Fields)
				}
			}
			b.ReportMetric(float64(n), "messages")
			b.ReportMetric(float64(fields), "fields")
		})
	}
}

// BenchmarkAnalyzeImagesCorpus measures corpus-batch throughput over the
// full 22-device corpus at several worker counts (the §V-E evaluation at
// fleet scale). On a single-CPU host every worker count costs the same; on
// an N-core host the images/sec metric scales with min(N, images).
// `make bench` runs the cmd/firmbench variant and records the results in
// BENCH_pipeline.json.
func BenchmarkAnalyzeImagesCorpus(b *testing.B) {
	imgs := make([][]byte, 0, 22)
	for id := 1; id <= 22; id++ {
		img, err := corpus.BuildImage(corpus.Device(id))
		if err != nil {
			b.Fatal(err)
		}
		imgs = append(imgs, img.Pack())
	}
	for _, j := range []int{1, 2, 4, 8} {
		j := j
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				br, err := AnalyzeImages(context.Background(), imgs, WithWorkers(j))
				if err != nil {
					b.Fatal(err)
				}
				if br.Summary.Reports != 20 { // devices 21-22 are script-only
					b.Fatalf("reports = %d, want 20", br.Summary.Reports)
				}
			}
			b.ReportMetric(float64(len(imgs)*b.N)/b.Elapsed().Seconds(), "images/sec")
		})
	}
}

// BenchmarkLintPipeline measures the lint pass framework — all registered
// checkers, including the per-function constant-propagation solve — over
// one lifted device-cloud executable.
func BenchmarkLintPipeline(b *testing.B) {
	bin, err := corpus.EmitDeviceCloudBinary(corpus.Device(17))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pcode.LiftProgram(bin)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := lint.NewRunner(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var findings int
	for i := 0; i < b.N; i++ {
		findings = len(runner.Run(prog, "/bin/cloudd"))
	}
	b.ReportMetric(float64(findings), "findings")
}
