package firmres

// FirmProbe: the §V replay loop as an opt-in pipeline stage. After the
// static analysis reconstructs a device's messages, WithProbe spins up a
// simulated flawed cloud from the device's spec, replays every message
// against it over HTTP and MQTT on a bounded prober fleet, and classifies
// each one — validity from the cloud's answer (§V-C), exploitability from
// an attacker-variant replay (§V-D). WithProbeChaos additionally injects
// seeded, deterministic faults (latency, resets, drops, 5xx bursts, MQTT
// disconnects, slow-loris) in front of the cloud so the fleet's fault
// tolerance is exercised end to end: identical seeds yield byte-identical
// probe reports at any prober count.

import (
	"fmt"
	"time"

	"firmres/internal/cloud"
	"firmres/internal/cloud/chaos"
	"firmres/internal/cloud/probe"
	"firmres/internal/corpus"
)

// Probe terminal classifications: every probed message ends in exactly one.
const (
	ProbeGranted = probe.ClassGranted // attacker variant granted: exploitable
	ProbeDenied  = probe.ClassDenied  // attacker variant refused
	ProbeInvalid = probe.ClassInvalid // cloud did not understand the message
	ProbeFailed  = probe.ClassFailed  // probe failed after retries (typed ErrorKind)
)

// ProbeAttempt is one replay outcome (device-identity or attacker variant).
type ProbeAttempt struct {
	Class   string // response class ("Request OK", "Access Denied", ...)
	Status  int    `json:",omitempty"` // HTTP status, 0 for MQTT
	Valid   bool   // the cloud understood the message (§V-C)
	Granted bool   // access was granted
}

// ProbeOutcome is the terminal result for one reconstructed message.
type ProbeOutcome struct {
	Function       string
	Context        string        `json:",omitempty"`
	Transport      string        // "http" or "mqtt"
	Route          string        `json:",omitempty"` // path, query route, or topic
	Classification string        // ProbeGranted / ProbeDenied / ProbeInvalid / ProbeFailed
	Validity       *ProbeAttempt `json:",omitempty"`
	Attack         *ProbeAttempt `json:",omitempty"`
	Vulnerable     bool          `json:",omitempty"` // §V-D confirmation
	Leaks          []string      `json:",omitempty"` // credentials leaked by the granted response
	ErrorKind      string        `json:",omitempty"` // taxonomy slug of a failed probe
}

// ProbeReport is the per-device exploitability report of the probe stage.
type ProbeReport struct {
	Probed     int            // messages probed (always all of them)
	Vulnerable int            // messages confirmed exploitable
	Counts     map[string]int // terminal class -> count
	Outcomes   []ProbeOutcome
}

func probeReportOf(rep *probe.Report) *ProbeReport {
	out := &ProbeReport{
		Probed:     rep.Probed,
		Vulnerable: rep.Vulnerable,
		Counts:     rep.Counts,
	}
	for _, o := range rep.Outcomes {
		po := ProbeOutcome{
			Function:       o.Function,
			Context:        o.Context,
			Transport:      o.Transport,
			Route:          o.Route,
			Classification: o.Classification,
			Vulnerable:     o.Vulnerable,
			Leaks:          o.Leaks,
			ErrorKind:      o.ErrorKind,
		}
		if o.Validity != nil {
			a := ProbeAttempt(*o.Validity)
			po.Validity = &a
		}
		if o.Attack != nil {
			a := ProbeAttempt(*o.Attack)
			po.Attack = &a
		}
		out.Outcomes = append(out.Outcomes, po)
	}
	return out
}

// ensureProbe lazily installs the probe stage configuration with the corpus
// spec resolver, so the WithProbe* options compose in any order.
func ensureProbe(c *config) *probe.Options {
	if c.opts.Probe == nil {
		c.opts.Probe = &probe.Options{
			Resolver: "corpus",
			SpecFor:  corpusSpecFor,
		}
	}
	return c.opts.Probe
}

// corpusSpecFor resolves the simulated-cloud spec for a corpus device by
// its report identity.
func corpusSpecFor(device, version string) *cloud.Spec {
	for _, d := range corpus.Devices() {
		if device == d.Vendor+" "+d.Model && version == d.Version {
			return corpus.CloudSpec(d)
		}
	}
	return nil
}

// WithProbe enables the probe-replay stage: every reconstructed message is
// replayed against a simulated cloud built from the device's corpus spec
// and terminally classified (see Report.Probe). Devices with no known spec
// degrade with a Report.Errors note instead of failing.
func WithProbe() Option {
	return func(c *config) { ensureProbe(c) }
}

// WithProbeChaos enables WithProbe and injects seeded deterministic faults
// in front of the simulated cloud. Modes: "latency", "reset", "drop",
// "5xx", "slowloris"; "all" (or no names) enables every mode. An unknown
// mode fails the analysis with a configuration error. Compose with
// WithProbeSeed in either order.
func WithProbeChaos(modes ...string) Option {
	return func(c *config) {
		po := ensureProbe(c)
		var seed int64
		if po.Chaos != nil {
			seed = po.Chaos.Seed
		}
		cfg, ok := chaos.ForModes(seed, modes...)
		if !ok {
			c.err = fmt.Errorf("firmres: unknown probe chaos mode in %v (have %v)", modes, chaos.Modes())
			return
		}
		po.Chaos = &cfg
	}
}

// ProbeChaosModes lists the selectable chaos fault modes.
func ProbeChaosModes() []string { return chaos.Modes() }

// WithProbeSeed enables WithProbe and pins the chaos fault schedule's seed:
// identical seeds produce byte-identical probe reports. Without
// WithProbeChaos the seed is recorded but no faults are injected.
func WithProbeSeed(seed int64) Option {
	return func(c *config) {
		po := ensureProbe(c)
		if po.Chaos == nil {
			po.Chaos = &chaos.Config{}
		}
		po.Chaos.Seed = seed
	}
}

// WithProbeProbers enables WithProbe and bounds the concurrent probers per
// device (default 8). Reports are byte-identical at any count.
func WithProbeProbers(n int) Option {
	return func(c *config) { ensureProbe(c).Probers = n }
}

// WithProbeTimeout enables WithProbe and bounds one probe attempt on either
// transport (default 1s). The chaos layer's slow-loris hold auto-scales to
// stay above it.
func WithProbeTimeout(d time.Duration) Option {
	return func(c *config) { ensureProbe(c).AttemptTimeout = d }
}
