package firmres

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"firmres/internal/corpus"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden end-to-end reports")

// goldenRecord is the stable projection of one device's analysis: the full
// report with wall-clock timings stripped, or the fatal outcome for images
// with no device-cloud executable (script-only devices 21-22).
type goldenRecord struct {
	Device  int     `json:"device"`
	Outcome string  `json:"outcome"` // "report" or "no-device-cloud-executable"
	Report  *Report `json:"report,omitempty"`
}

func goldenPath(id int) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("device_%02d.json", id))
}

func goldenRecordFor(t *testing.T, id int) *goldenRecord {
	t.Helper()
	img, err := corpus.BuildImage(corpus.Device(id))
	if err != nil {
		t.Fatalf("BuildImage(%d): %v", id, err)
	}
	rec := &goldenRecord{Device: id}
	report, err := AnalyzeImage(img.Pack(), WithLint())
	switch {
	case err == nil:
		report.StageTimings = nil // wall-clock, never golden
		rec.Outcome = "report"
		rec.Report = report
	case errors.Is(err, ErrNoDeviceCloudExecutable):
		rec.Outcome = "no-device-cloud-executable"
	default:
		t.Fatalf("AnalyzeImage(%d): %v", id, err)
	}
	return rec
}

// TestGoldenReports locks the end-to-end analysis output (lint included)
// for the whole 22-device corpus. Regenerate with `go test -run
// TestGoldenReports -update .` after an intentional behavior change.
//
// The subtests run in parallel (except under -update, where corpus
// regeneration must stay ordered): 22 concurrent full-pipeline analyses
// double as a stress test of the shared facts store and the stage worker
// pools, and the race detector in `make check` patrols them.
func TestGoldenReports(t *testing.T) {
	for id := 1; id <= 22; id++ {
		id := id
		t.Run(fmt.Sprintf("device_%02d", id), func(t *testing.T) {
			if !*updateGolden {
				t.Parallel()
			}
			rec := goldenRecordFor(t, id)
			got, err := json.MarshalIndent(rec, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := goldenPath(id)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGoldenReports -update .`): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("report for device %d diverged from %s;\nregenerate with -update if intentional.\ngot:\n%s", id, path, clip(string(got)))
			}
		})
	}
}

// TestGoldenReportsCached replays the whole corpus against the golden files
// with the persistent cache enabled, twice over one directory: the first
// pass populates the cache (cold), the second is served from it (warm).
// Both passes must stay byte-identical to the cache-off goldens — caching
// is an optimization, never an observable behavior change.
func TestGoldenReportsCached(t *testing.T) {
	dir := t.TempDir()
	var st CacheStats
	for _, pass := range []string{"cold", "warm"} {
		pass := pass
		t.Run(pass, func(t *testing.T) {
			for id := 1; id <= 22; id++ {
				img, err := corpus.BuildImage(corpus.Device(id))
				if err != nil {
					t.Fatalf("BuildImage(%d): %v", id, err)
				}
				rec := &goldenRecord{Device: id}
				report, err := AnalyzeImage(img.Pack(),
					WithLint(), WithCache(dir), WithCacheStats(&st))
				switch {
				case err == nil:
					report.StageTimings = nil
					rec.Outcome = "report"
					rec.Report = report
				case errors.Is(err, ErrNoDeviceCloudExecutable):
					rec.Outcome = "no-device-cloud-executable"
				default:
					t.Fatalf("AnalyzeImage(%d): %v", id, err)
				}
				got, err := json.MarshalIndent(rec, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				want, err := os.ReadFile(goldenPath(id))
				if err != nil {
					t.Fatalf("missing golden file: %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("%s cached report for device %d diverged from golden:\n%s",
						pass, id, clip(string(got)))
				}
			}
		})
	}
	// Devices 21-22 fail fatally (never cached), so a warm corpus pass is
	// 20 hits; everything else across both passes is a miss.
	if st.Hits != 20 || st.Misses != 24 {
		t.Errorf("cache stats over cold+warm corpus = %+v, want 20 hits + 24 misses", st)
	}
}

// clip bounds a diff dump to keep failures readable.
func clip(s string) string {
	const max = 4000
	if len(s) <= max {
		return s
	}
	return s[:max] + "\n... (truncated)"
}
