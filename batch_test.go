package firmres

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"firmres/internal/corpus"
)

// packCorpus packs the given corpus devices into batch input.
func packCorpus(t *testing.T, ids []int) [][]byte {
	t.Helper()
	imgs := make([][]byte, len(ids))
	for i, id := range ids {
		img, err := corpus.BuildImage(corpus.Device(id))
		if err != nil {
			t.Fatalf("BuildImage(%d): %v", id, err)
		}
		imgs[i] = img.Pack()
	}
	return imgs
}

// marshalBatch renders a batch report with wall-clock timings stripped, the
// projection that must be byte-identical at any worker count.
func marshalBatch(t *testing.T, br *BatchReport) string {
	t.Helper()
	for i := range br.Images {
		if br.Images[i].Report != nil {
			br.Images[i].Report.StageTimings = nil
		}
	}
	br.Summary.StageTotals = nil
	out, err := json.MarshalIndent(br, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestAnalyzeImagesDeterministicAcrossWorkers is the concurrency-correctness
// contract: the batch output (reports, per-image errors, summary, ordering)
// is byte-identical whether the corpus is analyzed on 1 worker or 8.
func TestAnalyzeImagesDeterministicAcrossWorkers(t *testing.T) {
	ids := make([]int, 0, 22)
	for id := 1; id <= 22; id++ {
		ids = append(ids, id)
	}
	imgs := packCorpus(t, ids)

	seq, err := AnalyzeImages(context.Background(), imgs, WithLint(), WithWorkers(1))
	if err != nil {
		t.Fatalf("AnalyzeImages(-j 1): %v", err)
	}
	par, err := AnalyzeImages(context.Background(), imgs, WithLint(), WithWorkers(8))
	if err != nil {
		t.Fatalf("AnalyzeImages(-j 8): %v", err)
	}
	got, want := marshalBatch(t, par), marshalBatch(t, seq)
	if got != want {
		t.Errorf("-j 8 batch output diverged from -j 1:\n%s", clip(got))
	}
}

func TestAnalyzeImagesSummary(t *testing.T) {
	// Device 17 reports (with flagged messages), device 21 is script-only
	// (fatal per-image, batch continues), device 2 reports cleanly.
	br, err := AnalyzeImages(context.Background(), packCorpus(t, []int{17, 21, 2}), WithLint())
	if err != nil {
		t.Fatalf("AnalyzeImages: %v", err)
	}
	s := br.Summary
	if s.Images != 3 || s.Reports != 2 || s.Failed != 1 {
		t.Errorf("summary counts = %+v", s)
	}
	if s.Messages == 0 || s.Flagged == 0 {
		t.Errorf("summary missing message stats: %+v", s)
	}
	if br.Images[1].Report != nil || !errors.Is(br.Images[1].Err, ErrNoDeviceCloudExecutable) {
		t.Errorf("script-only image result = %+v", br.Images[1])
	}
	if br.Images[1].Kind != "no-device-cloud-executable" {
		t.Errorf("script-only kind = %q", br.Images[1].Kind)
	}
	for i, want := range []string{"image[0]", "image[1]", "image[2]"} {
		if br.Images[i].Path != want {
			t.Errorf("path[%d] = %q, want %q", i, br.Images[i].Path, want)
		}
	}
}

func TestAnalyzeImagesCorruptEntry(t *testing.T) {
	imgs := packCorpus(t, []int{5})
	imgs = append(imgs, []byte("not a firmware image"))
	br, err := AnalyzeImages(context.Background(), imgs)
	if err != nil {
		t.Fatalf("AnalyzeImages: %v", err)
	}
	if br.Images[0].Report == nil {
		t.Errorf("healthy image failed: %+v", br.Images[0])
	}
	if !errors.Is(br.Images[1].Err, ErrCorruptImage) || br.Images[1].Kind != "corrupt-image" {
		t.Errorf("corrupt image result = %+v", br.Images[1])
	}
}

func TestAnalyzeImagesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AnalyzeImages(ctx, packCorpus(t, []int{5}))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeDir(t *testing.T) {
	dir := t.TempDir()
	imgs := packCorpus(t, []int{5, 2})
	if err := os.WriteFile(filepath.Join(dir, "a_dev5.img"), imgs[0], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b_dev2.img"), imgs[1], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".hidden"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	br, err := AnalyzeDir(context.Background(), dir)
	if err != nil {
		t.Fatalf("AnalyzeDir: %v", err)
	}
	if len(br.Images) != 2 {
		t.Fatalf("images = %d, want 2 (hidden file must be skipped)", len(br.Images))
	}
	if filepath.Base(br.Images[0].Path) != "a_dev5.img" || filepath.Base(br.Images[1].Path) != "b_dev2.img" {
		t.Errorf("paths not sorted: %q, %q", br.Images[0].Path, br.Images[1].Path)
	}
	if br.Summary.Reports != 2 {
		t.Errorf("summary = %+v", br.Summary)
	}
}

func TestAnalyzePathsUnreadable(t *testing.T) {
	br, err := AnalyzePaths(context.Background(), []string{filepath.Join(t.TempDir(), "missing.img")})
	if err != nil {
		t.Fatalf("AnalyzePaths: %v", err)
	}
	if br.Images[0].Err == nil || br.Summary.Failed != 1 {
		t.Errorf("missing file not recorded per-image: %+v", br.Images[0])
	}
}
