package firmres

import (
	"context"
	"errors"
	"testing"
	"time"

	"firmres/internal/faultinject"
)

// TestFaultInjectionNeverPanics drives the full public pipeline over every
// corruption mode at several seeds. Whatever the damage, AnalyzeImageContext
// must return within its budget with either a typed taxonomy error or a
// (possibly partial) report — never a panic, never a hang.
func TestFaultInjectionNeverPanics(t *testing.T) {
	data := packedDevice(t, 17)
	const stageBudget = 2 * time.Second
	for _, mode := range faultinject.Modes() {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				corrupted, err := faultinject.Corrupt(data, mode, seed)
				if err != nil {
					t.Fatalf("seed %d: Corrupt: %v", seed, err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*stageBudget+5*time.Second)
				start := time.Now()
				report, err := AnalyzeImageContext(ctx, corrupted, WithStageTimeout(stageBudget))
				elapsed := time.Since(start)
				cancel()
				if elapsed > 5*stageBudget+5*time.Second {
					t.Errorf("seed %d: analysis ran %v, past every budget", seed, elapsed)
				}
				switch {
				case err != nil:
					// Fatal outcomes must carry the taxonomy.
					if !errors.Is(err, ErrCorruptImage) &&
						!errors.Is(err, ErrNoDeviceCloudExecutable) &&
						!errors.Is(err, ErrStageTimeout) {
						t.Errorf("seed %d: untyped fatal error: %v", seed, err)
					}
				case report == nil:
					t.Errorf("seed %d: nil report with nil error", seed)
				case report.Partial():
					// Every recorded entry must name the skipped work.
					for _, ae := range report.Errors {
						if ae.Stage == "" || ae.Detail == "" || ae.Kind == "error" {
							t.Errorf("seed %d: anonymous degradation entry: %+v", seed, ae)
						}
					}
				}
			}
		})
	}
}

// TestFaultInjectionSurvivesWithoutBudget repeats the sweep with no stage
// budget: parser-level corruption must still resolve to typed errors or
// reports through structural validation alone.
func TestFaultInjectionSurvivesWithoutBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("long corruption sweep")
	}
	data := packedDevice(t, 5)
	for _, mode := range faultinject.Modes() {
		corrupted, err := faultinject.Corrupt(data, mode, 42)
		if err != nil {
			t.Fatalf("%s: Corrupt: %v", mode, err)
		}
		report, err := AnalyzeImage(corrupted)
		if err == nil && report == nil {
			t.Errorf("%s: nil report with nil error", mode)
		}
		if err != nil && !errors.Is(err, ErrCorruptImage) &&
			!errors.Is(err, ErrNoDeviceCloudExecutable) {
			t.Errorf("%s: untyped error without budget: %v", mode, err)
		}
	}
}
