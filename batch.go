package firmres

// Corpus-level batch analysis: the §V-E evaluation shape. A batch analyzes
// many firmware images on a bounded worker pool (WithWorkers) and returns
// per-image reports in input order plus an aggregate summary, so a
// 22-device corpus — or a production-scale crawl — is one call instead of
// one process per image.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"firmres/internal/errdefs"
	"firmres/internal/obs"
	"firmres/internal/parallel"
)

// ImageResult is the outcome for one image of a batch. Exactly one of
// Report and Error is meaningful: a fatal per-image failure (corrupt image,
// no device-cloud executable, configuration error) is recorded here instead
// of aborting the batch.
type ImageResult struct {
	// Path is the source file for AnalyzePaths/AnalyzeDir batches, or
	// "image[i]" for in-memory AnalyzeImages input.
	Path   string  `json:"path"`
	Report *Report `json:"report,omitempty"`
	// Kind is the taxonomy slug of a fatal failure ("corrupt-image",
	// "no-device-cloud-executable", ...), "" on success.
	Kind string `json:"kind,omitempty"`
	// Error is the rendered fatal failure, "" on success.
	Error string `json:"error,omitempty"`
	// Err is the underlying fatal failure for errors.Is / errors.As.
	Err error `json:"-"`
}

// BatchSummary aggregates a batch run. All counts are derived from the
// per-image results, so the summary is deterministic at any worker count.
type BatchSummary struct {
	Images      int // images submitted
	Reports     int // images that produced a report
	Failed      int // images that failed fatally
	Partial     int // reports that degraded (Report.Partial)
	Messages    int // reconstructed messages across all reports
	Flagged     int // messages the form check marked
	Diagnostics int // lint findings across all reports
	// StageTotals sums each pipeline stage's wall-clock time across every
	// per-image report — the corpus-level §V-E breakdown the per-image
	// StageTimings used to be silently dropped from. Nil when no image
	// produced a report.
	StageTotals map[string]time.Duration `json:",omitempty"`
	// Metrics merges every report's WithMetrics snapshot (counters and
	// histogram components sum per key). Nil without WithMetrics.
	Metrics map[string]int64 `json:",omitempty"`
	// Cache counts the batch's persistent-cache activity (hits, misses,
	// evictions, corrupt entries discarded). Nil without WithCache.
	Cache *CacheStats `json:",omitempty"`
	// Probe rolls up the probe-replay stage across every report that ran
	// it. Nil without WithProbe.
	Probe *ProbeSummary `json:",omitempty"`
}

// ProbeSummary aggregates the probe-replay stage over a batch.
type ProbeSummary struct {
	Probed     int // messages replayed across all reports
	Granted    int // attacker variant granted (exploitable)
	Denied     int // attacker variant refused
	Invalid    int // messages the cloud did not understand
	Failed     int // probes that failed after retries
	Vulnerable int // messages confirmed exploitable
}

// BatchReport is the outcome of one corpus batch: per-image results in
// input order plus the aggregate summary.
type BatchReport struct {
	Images  []ImageResult
	Summary BatchSummary
}

// AnalyzeImages analyzes a batch of packed firmware images under ctx on a
// WithWorkers-bounded pool, returning per-image results in input order. A
// fatal failure of one image is recorded in its ImageResult and does not
// stop the batch; the error return is reserved for an expired or cancelled
// ctx (wrapping ErrStageTimeout and the context error).
func AnalyzeImages(ctx context.Context, imgs [][]byte, opts ...Option) (*BatchReport, error) {
	cfg := newConfig(opts)
	// Corpus runs release each image's facts store once its report is
	// built, so finished images don't pin per-function solutions for the
	// rest of the sweep (facts.Program.Release).
	cfg.opts.ReleaseFacts = true
	cfg.observe(len(imgs))
	rn, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	results := make([]ImageResult, len(imgs))
	parallel.ForEach(ctx, parallel.CPUWorkers(cfg.workers), len(imgs), func(i int) {
		results[i] = analyzeBatchImage(ctx, rn, fmt.Sprintf("image[%d]", i), imgs[i])
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("firmres: %w: %w", errdefs.ErrStageTimeout, err)
	}
	return batchReport(results, rn.finish()), nil
}

// AnalyzePaths analyzes firmware image files on disk as one batch, with the
// same contract as AnalyzeImages; unreadable files fail per-image.
func AnalyzePaths(ctx context.Context, paths []string, opts ...Option) (*BatchReport, error) {
	cfg := newConfig(opts)
	cfg.opts.ReleaseFacts = true // same store trim as AnalyzeImages
	cfg.observe(len(paths))
	rn, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	results := make([]ImageResult, len(paths))
	parallel.ForEach(ctx, parallel.CPUWorkers(cfg.workers), len(paths), func(i int) {
		data, err := os.ReadFile(paths[i])
		if err != nil {
			results[i] = ImageResult{
				Path: paths[i], Kind: errdefs.Kind(err),
				Error: err.Error(), Err: err,
			}
			return
		}
		results[i] = analyzeBatchImage(ctx, rn, paths[i], data)
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("firmres: %w: %w", errdefs.ErrStageTimeout, err)
	}
	return batchReport(results, rn.finish()), nil
}

// AnalyzeDir analyzes every regular file directly under dir (sorted by
// name, hidden files skipped) as one batch, with the same contract as
// AnalyzePaths.
func AnalyzeDir(ctx context.Context, dir string, opts ...Option) (*BatchReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("firmres: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if e.Type().IsRegular() && e.Name()[0] != '.' {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return AnalyzePaths(ctx, paths, opts...)
}

// analyzeBatchImage runs the shared runner over one packed image — through
// the persistent cache when enabled — folding fatal failures into the
// result slot.
func analyzeBatchImage(ctx context.Context, rn *runner, path string, data []byte) ImageResult {
	out := ImageResult{Path: path}
	rep, err := rn.analyzeData(ctx, data)
	if err != nil {
		out.Kind, out.Error, out.Err = errdefs.Kind(err), err.Error(), err
		return out
	}
	out.Report = rep
	return out
}

// batchReport assembles the aggregate summary over ordered results.
func batchReport(results []ImageResult, cacheStats *CacheStats) *BatchReport {
	br := &BatchReport{Images: results}
	s := &br.Summary
	s.Images = len(results)
	s.Cache = cacheStats
	for i := range results {
		r := results[i].Report
		if r == nil {
			s.Failed++
			continue
		}
		s.Reports++
		if r.Partial() {
			s.Partial++
		}
		s.Messages += len(r.Messages)
		for _, m := range r.Messages {
			if m.Flagged {
				s.Flagged++
			}
		}
		s.Diagnostics += len(r.Diagnostics)
		if p := r.Probe; p != nil {
			if s.Probe == nil {
				s.Probe = &ProbeSummary{}
			}
			s.Probe.Probed += p.Probed
			s.Probe.Granted += p.Counts[ProbeGranted]
			s.Probe.Denied += p.Counts[ProbeDenied]
			s.Probe.Invalid += p.Counts[ProbeInvalid]
			s.Probe.Failed += p.Counts[ProbeFailed]
			s.Probe.Vulnerable += p.Vulnerable
		}
		for stage, d := range r.StageTimings {
			if s.StageTotals == nil {
				s.StageTotals = make(map[string]time.Duration, len(r.StageTimings))
			}
			s.StageTotals[stage] += d
		}
		s.Metrics = obs.MergeSnapshots(s.Metrics, r.Metrics)
	}
	return br
}
