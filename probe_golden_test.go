package firmres

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"firmres/internal/corpus"
)

// probeGoldenRecord is the stable projection of one device's probe stage:
// the exploitability report against a healthy simulated cloud.
type probeGoldenRecord struct {
	Device  int          `json:"device"`
	Outcome string       `json:"outcome"` // "probed" or "no-device-cloud-executable"
	Probe   *ProbeReport `json:"probe,omitempty"`
}

func probeGoldenPath(id int) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("probe_device_%02d.json", id))
}

// TestProbeGoldenReports locks the probe stage's exploitability verdicts
// for the whole corpus (chaos off). Regenerate with `go test -run
// TestProbeGoldenReports -update .` after an intentional behavior change.
func TestProbeGoldenReports(t *testing.T) {
	for id := 1; id <= 22; id++ {
		id := id
		t.Run(fmt.Sprintf("device_%02d", id), func(t *testing.T) {
			if !*updateGolden {
				t.Parallel()
			}
			img, err := corpus.BuildImage(corpus.Device(id))
			if err != nil {
				t.Fatalf("BuildImage(%d): %v", id, err)
			}
			rec := &probeGoldenRecord{Device: id}
			report, err := AnalyzeImage(img.Pack(), WithProbe())
			switch {
			case err == nil:
				rec.Outcome = "probed"
				rec.Probe = report.Probe
				if rec.Probe == nil {
					t.Fatalf("device %d: probe enabled but report.Probe is nil (errors: %+v)", id, report.Errors)
				}
			case errors.Is(err, ErrNoDeviceCloudExecutable):
				rec.Outcome = "no-device-cloud-executable"
			default:
				t.Fatalf("AnalyzeImage(%d): %v", id, err)
			}
			got, err := json.MarshalIndent(rec, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := probeGoldenPath(id)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestProbeGoldenReports -update .`): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("probe report for device %d diverged from %s;\nregenerate with -update if intentional.\ngot:\n%s", id, path, clip(string(got)))
			}
		})
	}
}

// TestProbeChaosSeedDeterminism is the public-API half of the determinism
// contract: identical seed and chaos modes yield a byte-identical report,
// run to run, even at different prober counts.
func TestProbeChaosSeedDeterminism(t *testing.T) {
	img := packedDevice(t, 17)
	var dumps [][]byte
	for _, probers := range []int{4, 64} {
		report, err := AnalyzeImage(img,
			WithProbe(), WithProbeChaos("all"), WithProbeSeed(42),
			WithProbeProbers(probers), WithProbeTimeout(250*time.Millisecond))
		if err != nil {
			t.Fatalf("AnalyzeImage(probers=%d): %v", probers, err)
		}
		report.StageTimings = nil
		dump, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, dump)
	}
	if string(dumps[0]) != string(dumps[1]) {
		t.Fatalf("chaos reports diverge across runs/prober counts:\n%s\nvs\n%s",
			clip(string(dumps[0])), clip(string(dumps[1])))
	}
	// Under chaos every message must still end terminally classified.
	var report Report
	if err := json.Unmarshal(dumps[0], &report); err != nil {
		t.Fatal(err)
	}
	terminal := report.Probe.Counts[ProbeGranted] + report.Probe.Counts[ProbeDenied] +
		report.Probe.Counts[ProbeInvalid] + report.Probe.Counts[ProbeFailed]
	if terminal != report.Probe.Probed || report.Probe.Probed == 0 {
		t.Errorf("terminal %d of %d probed", terminal, report.Probe.Probed)
	}
}

func TestProbeUnknownChaosModeErrors(t *testing.T) {
	_, err := AnalyzeImage(packedDevice(t, 17), WithProbe(), WithProbeChaos("gremlins"))
	if err == nil || !strings.Contains(err.Error(), "unknown probe chaos mode") {
		t.Fatalf("err = %v, want unknown-chaos-mode configuration error", err)
	}
}

// TestProbeMetricsExposed pins the observability satellite: probe counters
// surface through WithMetrics when the stage runs and are wholly absent
// when it does not.
func TestProbeMetricsExposed(t *testing.T) {
	img := packedDevice(t, 17)
	report, err := AnalyzeImage(img, WithProbe(), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if report.Metrics["probe_attempts_total"] == 0 {
		t.Error("probe_attempts_total missing from metrics snapshot")
	}
	var results int64
	for _, class := range []string{ProbeGranted, ProbeDenied, ProbeInvalid, ProbeFailed} {
		results += report.Metrics[`probe_results_total{class="`+class+`"}`]
	}
	if results != int64(report.Probe.Probed) {
		t.Errorf("probe_results_total sums to %d, want %d", results, report.Probe.Probed)
	}

	plain, err := AnalyzeImage(img, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Probe != nil {
		t.Error("probe report present without WithProbe")
	}
	for key := range plain.Metrics {
		if strings.HasPrefix(key, "probe_") {
			t.Errorf("probe metric %q leaked into a probe-less run", key)
		}
	}
}

// TestProbeBatchSummary checks the fleet rollup in BatchReport.Summary.
func TestProbeBatchSummary(t *testing.T) {
	var imgs [][]byte
	for _, id := range []int{1, 2, 17} {
		imgs = append(imgs, packedDevice(t, id))
	}
	br, err := AnalyzeImages(context.Background(), imgs, WithProbe())
	if err != nil {
		t.Fatal(err)
	}
	s := br.Summary.Probe
	if s == nil {
		t.Fatal("batch summary has no probe rollup")
	}
	var probed, vulnerable int
	for _, res := range br.Images {
		if res.Report == nil || res.Report.Probe == nil {
			t.Fatalf("image result missing probe report: %+v", res)
		}
		probed += res.Report.Probe.Probed
		vulnerable += res.Report.Probe.Vulnerable
	}
	if s.Probed != probed || s.Vulnerable != vulnerable {
		t.Errorf("rollup = %+v, want probed %d vulnerable %d", s, probed, vulnerable)
	}
	if s.Granted+s.Denied+s.Invalid+s.Failed != s.Probed {
		t.Errorf("rollup classes do not sum to probed: %+v", s)
	}
}
