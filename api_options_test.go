package firmres

import (
	"os"
	"path/filepath"
	"testing"

	"firmres/internal/corpus"
	"firmres/internal/experiments"
	"firmres/internal/nn"
)

// trainTinyModel fits a small classifier for the option tests.
func trainTinyModel(t *testing.T) *nn.Model {
	t.Helper()
	model, _, _, err := experiments.TrainClassifier(experiments.Config{
		TrainingDevices: 8,
		Model:           nn.Config{EmbedDim: 16, Filters: 8, MaxLen: 48, Epochs: 5, Seed: 5},
	})
	if err != nil {
		t.Fatalf("TrainClassifier: %v", err)
	}
	return model
}

func TestWithModelOption(t *testing.T) {
	model := trainTinyModel(t)
	report, err := AnalyzeImage(packedDevice(t, 17), WithModel(model))
	if err != nil {
		t.Fatalf("AnalyzeImage: %v", err)
	}
	// The model-backed run must still recover identifier semantics.
	var sawIdentifier bool
	for _, m := range report.Messages {
		for _, f := range m.Fields {
			if f.Semantics == "Dev-Identifier" {
				sawIdentifier = true
			}
		}
	}
	if !sawIdentifier {
		t.Error("model classifier recovered no Dev-Identifier fields")
	}
}

func TestWithModelFileOption(t *testing.T) {
	model := trainTinyModel(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	report, err := AnalyzeImage(packedDevice(t, 5), WithModelFile(path))
	if err != nil {
		t.Fatalf("AnalyzeImage: %v", err)
	}
	if len(report.Messages) == 0 {
		t.Error("no messages with model file")
	}
	// A missing model file silently falls back to the keyword classifier.
	if _, err := AnalyzeImage(packedDevice(t, 5),
		WithModelFile(filepath.Join(t.TempDir(), "missing.gob"))); err != nil {
		t.Errorf("missing model file should fall back, got %v", err)
	}
	// A corrupt model file also falls back.
	bad := filepath.Join(t.TempDir(), "bad.gob")
	os.WriteFile(bad, []byte("not a model"), 0o644)
	if _, err := AnalyzeImage(packedDevice(t, 5), WithModelFile(bad)); err != nil {
		t.Errorf("corrupt model file should fall back, got %v", err)
	}
}

func TestWithKeywordClassifierExplicit(t *testing.T) {
	if _, err := AnalyzeImage(packedDevice(t, 5), WithKeywordClassifier()); err != nil {
		t.Errorf("AnalyzeImage: %v", err)
	}
}

func TestWithMinHandlerScore(t *testing.T) {
	// An impossible threshold filters every handler: identification fails.
	_, err := AnalyzeImage(packedDevice(t, 5), WithMinHandlerScore(1.1))
	if err == nil {
		t.Error("threshold 1.1 still identified a device-cloud executable")
	}
}

func TestReportFlaggedDetailSurfaces(t *testing.T) {
	report, err := AnalyzeImage(packedDevice(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	var sawKnownVuln bool
	for _, m := range report.Messages {
		if m.Function == "msg_rms_register" {
			if !m.Flagged || m.Verdict != "missing-primitives" {
				t.Errorf("rms_register verdict = %q flagged=%v", m.Verdict, m.Flagged)
			}
			sawKnownVuln = true
		}
	}
	if !sawKnownVuln {
		t.Error("device 11's registration message missing from report")
	}
	_ = corpus.Device(11)
}
