package firmres

// Run observability: hierarchical traces, live span observers, progress
// reporting, and metric snapshots. All of it is opt-in — an analysis
// without these options runs the exact same code paths and produces
// byte-identical reports.

import (
	"io"
	"time"

	"firmres/internal/obs"
)

// SpanEvent is one span notification delivered to an Observer. Parent is 0
// for the per-image root spans; End is zero in SpanStart notifications.
type SpanEvent struct {
	ID     int64
	Parent int64
	Name   string // "image", stage name, or inner-loop name
	Status string // "" = ok; "partial", "timeout", "skipped", ...
	Start  time.Time
	End    time.Time
	Attrs  map[string]string // device, path, fn, ... (nil when none)
}

// Duration is the span's wall-clock extent (zero before End).
func (e SpanEvent) Duration() time.Duration {
	if e.End.IsZero() {
		return 0
	}
	return e.End.Sub(e.Start)
}

// Observer is a sink notified as analysis spans start and end — the hook
// for custom dashboards or log streams. Implementations must be safe for
// concurrent calls: spans start and end on many goroutines at once.
type Observer interface {
	SpanStart(SpanEvent)
	SpanEnd(SpanEvent)
}

// Trace collects the hierarchical spans of an analysis run: one root span
// per image, a child span per pipeline stage, and grandchildren for the hot
// inner loops (per-candidate pinpointing, per-site taint, per-message
// classification, per-function lint). Pass it with WithTrace, run the
// analysis, then export.
//
// A Trace may span several Analyze calls (their images all land in the same
// recorder), but attach WithObserver / WithProgress sinks on only one of
// them — each call adds its sinks to the shared recorder.
type Trace struct {
	rec *obs.Recorder
}

// NewTrace builds an empty trace recorder.
func NewTrace() *Trace { return &Trace{rec: obs.NewRecorder()} }

// WriteTree renders the recorded spans as an indented human-readable tree
// with durations, attributes, and statuses.
func (t *Trace) WriteTree(w io.Writer) error {
	return obs.WriteTree(w, t.rec.Spans())
}

// WriteChromeTrace renders the recorded spans in Chrome trace_event JSON,
// loadable in chrome://tracing and https://ui.perfetto.dev.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, t.rec.Spans())
}

// WithTrace records the analysis's span tree into t.
func WithTrace(t *Trace) Option {
	return func(c *config) {
		if t != nil {
			c.trace = t
		}
	}
}

// WithObserver streams span start/end events to o as the analysis runs.
func WithObserver(o Observer) Option {
	return func(c *config) {
		if o != nil {
			c.observers = append(c.observers, o)
		}
	}
}

// WithProgress prints a one-line progress update to w each time an image
// finishes: count, percentage, per-image duration, ETA, and the stages the
// in-flight images are in. Meant for batch runs on a terminal's stderr.
func WithProgress(w io.Writer) Option {
	return func(c *config) {
		if w != nil {
			c.progressW = w
		}
	}
}

// WithMetrics collects work-derived counters and histograms during the
// analysis and snapshots them into Report.Metrics: facts-store hits and
// misses per artifact, taint steps and frontier sizes, MFTs built, fields
// per semantic label, lint findings per rule, degraded stages by error
// kind. Every value derives from the work performed — never from timing or
// scheduling — so snapshots are identical at any WithWorkers count.
func WithMetrics() Option {
	return func(c *config) { c.opts.Metrics = true }
}

// WriteMetrics renders a metrics snapshot (Report.Metrics or
// BatchReport.Summary.Metrics) in Prometheus text exposition format, keys
// sorted, each prefixed "firmres_".
func WriteMetrics(w io.Writer, snapshot map[string]int64) error {
	return obs.WritePrometheus(w, snapshot)
}

// MergeMetrics folds snapshot src into dst (allocating dst when nil) and
// returns it: counters and histogram _count/_sum components add, histogram
// _min/_max components combine as the running extremes. Use it to
// aggregate Report.Metrics across separate Analyze calls; batch runs get
// the same aggregation in BatchReport.Summary.Metrics.
func MergeMetrics(dst, src map[string]int64) map[string]int64 {
	return obs.MergeSnapshots(dst, src)
}

// observerAdapter bridges the public Observer to the internal span sink.
type observerAdapter struct {
	o Observer
}

func eventOf(d obs.SpanData) SpanEvent {
	ev := SpanEvent{
		ID: d.ID, Parent: d.Parent, Name: d.Name,
		Status: d.Status, Start: d.Start, End: d.End,
	}
	if len(d.Attrs) > 0 {
		ev.Attrs = make(map[string]string, len(d.Attrs))
		for _, a := range d.Attrs {
			ev.Attrs[a.Key] = a.Value
		}
	}
	return ev
}

func (a observerAdapter) SpanStart(d obs.SpanData) { a.o.SpanStart(eventOf(d)) }
func (a observerAdapter) SpanEnd(d obs.SpanData)   { a.o.SpanEnd(eventOf(d)) }

// observe assembles the span recorder for one Analyze call from the
// configured sinks. totalImages sizes the progress reporter's ETA.
func (c *config) observe(totalImages int) {
	if c.trace == nil && len(c.observers) == 0 && c.progressW == nil {
		return
	}
	rec := obs.NewRecorder()
	if c.trace != nil {
		rec = c.trace.rec
	}
	for _, o := range c.observers {
		rec.AddObserver(observerAdapter{o: o})
	}
	if c.progressW != nil {
		rec.AddObserver(obs.NewProgress(c.progressW, totalImages))
	}
	c.opts.Obs = rec
}
