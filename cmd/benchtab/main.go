// Command benchtab regenerates the paper's evaluation tables from a fresh
// corpus run and prints them side-by-side with the published values.
//
// Usage:
//
//	benchtab [-table 1|2|3|4] [-perf] [-model] [-all]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"firmres/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "print one table (1-4)")
	perf := flag.Bool("perf", false, "print the §V-E performance breakdown")
	useModel := flag.Bool("model", false, "train and use the TextCNN classifier (slower)")
	all := flag.Bool("all", false, "print every table and the performance breakdown")
	flag.Parse()
	if *table == 0 && !*perf && !*all {
		*all = true
	}
	if err := run(*table, *perf, *all, *useModel); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(table int, perf, all, useModel bool) error {
	if table == 1 && !all && !perf {
		printTableI()
		return nil
	}
	fmt.Println("benchtab: generating corpus and analyzing 22 devices...")
	run, err := experiments.NewRun(experiments.Config{UseModel: useModel})
	if err != nil {
		return err
	}
	defer run.Close()

	if all || table == 1 {
		printTableI()
	}
	if all || table == 2 {
		printTableII(run)
	}
	if all || table == 3 {
		if err := printTableIII(run); err != nil {
			return err
		}
	}
	if all || table == 4 {
		if err := printTableIV(run); err != nil {
			return err
		}
	}
	if all || perf {
		printPerf(run)
	}
	return nil
}

func printTableI() {
	fmt.Println("\nTable I — evaluated devices")
	fmt.Printf("%-3s %-28s %-22s %s\n", "ID", "Model", "Type", "Firmware Version")
	for _, r := range experiments.TableI() {
		fmt.Printf("%-3d %-28s %-22s %s\n", r.ID, r.Model, r.Category, r.Version)
	}
}

func printTableII(run *experiments.Run) {
	res := experiments.TableII(run)
	fmt.Println("\nTable II — message reconstruction (measured / paper)")
	fmt.Printf("%-3s %12s %12s %14s %14s %16s %9s\n",
		"ID", "#Msg", "#Valid", "#FieldsIdent", "#FieldsConf", "clusters .5/.6/.7", "#SemAcc")
	for _, r := range res.Rows {
		clusters := "  -/-/-"
		if r.Clusters != nil {
			clusters = fmt.Sprintf("%3d/%d/%d", r.Clusters[0.5], r.Clusters[0.6], r.Clusters[0.7])
		}
		fmt.Printf("%-3d %6d/%-5d %6d/%-5d %7d/%-6d %7d/%-6d %16s %5d/%d\n",
			r.DeviceID,
			r.MsgIdentified, r.PaperMsgIdentified,
			r.MsgValid, r.PaperMsgValid,
			r.FieldsIdent, r.PaperFieldsIdent,
			r.FieldsConfirmed, r.PaperFieldsConfirmed,
			clusters, r.SemAccurate, r.SemTotal)
	}
	fmt.Printf("totals: %d/281 identified, %d/246 valid, fields %d/2019 identified, %d/1785 confirmed\n",
		res.TotalIdentified, res.TotalValid, res.TotalFieldsIdent, res.TotalFieldsConf)
	fmt.Printf("field accuracy %.2f%% (paper 88.41%%), semantics accuracy %.2f%% (paper 91.93%%)\n",
		100*res.FieldAccuracy, 100*res.SemanticsAccuracy)
	if run.Model != nil {
		fmt.Printf("classifier: TextCNN val %.2f%% / test %.2f%% (paper 92.23%%/91.74%%)\n",
			100*res.ModelValAcc, 100*res.ModelTestAcc)
	}
	fmt.Printf("skipped (script-only, §V-B): %v\n", res.Skipped)
}

func printTableIII(run *experiments.Run) error {
	res, err := experiments.TableIII(run)
	if err != nil {
		return err
	}
	fmt.Println("\nTable III — discovered vulnerabilities")
	fmt.Printf("flagged %d (paper 26), confirmed %d (paper 15), FPs %d (paper 11)\n",
		res.Flagged, res.Confirmed, res.FalsePositives)
	fmt.Printf("%d distinct interfaces in %d devices, %d previously known (paper: 14/8/1)\n",
		len(res.Vulns), res.VulnDevices, res.KnownVulns)
	for _, v := range res.Vulns {
		known := ""
		if v.Known {
			known = " (known)"
		}
		fmt.Printf("  dev %-2d %-52s%s\n         path %s  params %s\n         %s\n",
			v.DeviceID, v.Name, known, v.Path, v.Params, v.Note)
	}
	return nil
}

func printTableIV(run *experiments.Run) error {
	rows, err := experiments.TableIV(run)
	if err != nil {
		return err
	}
	fmt.Println("\nTable IV — comparison of existing works")
	fmt.Printf("%-28s %-16s %-32s %11s %9s\n", "Tool", "Inputs", "Target clouds", "#Interfaces", "Accuracy")
	for _, r := range rows {
		fmt.Printf("%-28s %-16s %-32s %11d %8.1f%%\n",
			r.Tool, r.Inputs, r.Targets, r.Interfaces, 100*r.Accuracy)
	}
	return nil
}

func printPerf(run *experiments.Run) {
	perf := experiments.Perf(run)
	fmt.Println("\n§V-E — performance breakdown (measured vs paper)")
	names := []string{"pinpoint executables", "identify fields", "recover semantics",
		"concatenate fields", "detect incorrect forms"}
	paper := []float64{37.67, 43.83, 3.71, 9.96, 4.81}
	for i, n := range names {
		fmt.Printf("  %-24s %6.2f%%   (paper %5.2f%%)\n", n, 100*perf.StageShare[i], paper[i])
	}
	fmt.Printf("  per-firmware total: min %v, max %v (paper 154 s – 1472 s on real firmware)\n",
		perf.MinTotal, perf.MaxTotal)
	ids := make([]int, 0, len(perf.PerDevice))
	for id := range perf.PerDevice {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("    device %-2d %v\n", id, perf.PerDevice[id])
	}
}
