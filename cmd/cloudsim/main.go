// Command cloudsim runs the simulated vendor cloud for one or more corpus
// devices: an HTTP service and an MQTT broker with the seeded access-control
// policies, printing every access decision.
//
// Usage:
//
//	cloudsim [-device N] [-all]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"firmres/internal/cloud"
	"firmres/internal/corpus"
)

func main() {
	device := flag.Int("device", 17, "corpus device ID to host (1-20)")
	all := flag.Bool("all", false, "host every binary device's cloud in one process")
	flag.Parse()
	if err := run(*device, *all); err != nil {
		fmt.Fprintln(os.Stderr, "cloudsim:", err)
		os.Exit(1)
	}
}

func run(device int, all bool) error {
	var specs []*cloud.Spec
	if all {
		for _, d := range corpus.Devices() {
			if !d.ScriptOnly {
				specs = append(specs, corpus.CloudSpec(d))
			}
		}
	} else {
		d := corpus.Device(device)
		if d.ScriptOnly {
			return fmt.Errorf("device %d is script-only and hosts no simulated cloud", device)
		}
		specs = append(specs, corpus.CloudSpec(d))
	}
	c := cloud.New(specs...)
	httpAddr, mqttAddr, err := c.Start()
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("cloudsim: HTTP on %s, MQTT on %s\n", httpAddr, mqttAddr)
	for _, s := range specs {
		for _, ep := range s.Endpoints {
			mark := " "
			if ep.Vulnerable {
				mark = "!"
			}
			fmt.Printf(" %s device %2d  %-45s policy=%s\n", mark, s.DeviceID, ep.Path, ep.Policy)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	seen := 0
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\ncloudsim: shutting down")
			return nil
		case <-ticker.C:
			log := c.AccessLog()
			for ; seen < len(log); seen++ {
				a := log[seen]
				fmt.Printf("access: device=%d endpoint=%s class=%q granted=%v\n",
					a.DeviceID, a.Endpoint, a.Class, a.Granted)
			}
		}
	}
}
