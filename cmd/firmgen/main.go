// Command firmgen generates the synthetic firmware corpus to disk: one
// packed image per device (device01.img ... device22.img) plus a manifest.
//
// With -stripped, a symbol-stripped twin of each image
// (deviceNN.stripped.img) is written alongside the symbol-full one: every
// binary executable loses its function symbols, data symbols, local
// variables, and import names — the input the firmres -stripped recovery
// pass is built for.
//
// Usage:
//
//	firmgen [-out dir] [-device N] [-stripped]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"firmres/internal/corpus"
)

func main() {
	out := flag.String("out", "corpus-out", "output directory")
	device := flag.Int("device", 0, "generate a single device (1-22); 0 = all")
	stripped := flag.Bool("stripped", false, "also write a symbol-stripped twin of each image (deviceNN.stripped.img)")
	flag.Parse()
	if err := run(*out, *device, *stripped); err != nil {
		fmt.Fprintln(os.Stderr, "firmgen:", err)
		os.Exit(1)
	}
}

func run(out string, device int, stripped bool) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	devices := corpus.Devices()
	if device != 0 {
		if device < 1 || device > len(devices) {
			return fmt.Errorf("device %d out of range 1-%d", device, len(devices))
		}
		devices = devices[device-1 : device]
	}
	manifest, err := os.Create(filepath.Join(out, "MANIFEST"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	for _, d := range devices {
		img, err := corpus.BuildImage(d)
		if err != nil {
			return fmt.Errorf("device %d: %w", d.ID, err)
		}
		name := fmt.Sprintf("device%02d.img", d.ID)
		data := img.Pack()
		if err := os.WriteFile(filepath.Join(out, name), data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(manifest, "%s\t%s %s\t%s\t%d bytes\n",
			name, d.Vendor, d.Model, d.Version, len(data))
		fmt.Printf("wrote %s (%s %s, %d files, %d bytes)\n",
			name, d.Vendor, d.Model, len(img.Files), len(data))
		if !stripped {
			continue
		}
		if err := corpus.StripImage(img); err != nil {
			return fmt.Errorf("device %d: strip: %w", d.ID, err)
		}
		sname := fmt.Sprintf("device%02d.stripped.img", d.ID)
		sdata := img.Pack()
		if err := os.WriteFile(filepath.Join(out, sname), sdata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(manifest, "%s\t%s %s\t%s\t%d bytes\tstripped\n",
			sname, d.Vendor, d.Model, d.Version, len(sdata))
		fmt.Printf("wrote %s (%s %s, stripped, %d bytes)\n", sname, d.Vendor, d.Model, len(sdata))
	}
	return nil
}
