package main

import (
	"os"
	"path/filepath"
	"testing"

	"firmres/internal/image"
)

func TestRunGeneratesSingleDevice(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 17, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "device17.img"))
	if err != nil {
		t.Fatalf("read image: %v", err)
	}
	img, err := image.Unpack(data)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if img.Device != "Cubetoou T9" {
		t.Errorf("device = %q", img.Device)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil || len(manifest) == 0 {
		t.Errorf("manifest: %v (%d bytes)", err, len(manifest))
	}
}

func TestRunRejectsBadDevice(t *testing.T) {
	if err := run(t.TempDir(), 99, false); err == nil {
		t.Error("device 99 accepted")
	}
}

func TestRunAllDevices(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 23 { // 22 images + MANIFEST
		t.Errorf("generated %d files, want 23", len(entries))
	}
}

func TestRunStrippedTwins(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 17, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "device17.stripped.img"))
	if err != nil {
		t.Fatalf("read stripped image: %v", err)
	}
	img, err := image.Unpack(data)
	if err != nil {
		t.Fatalf("unpack stripped: %v", err)
	}
	if img.Device != "Cubetoou T9" {
		t.Errorf("device = %q", img.Device)
	}
}
