// Command firmbench measures end-to-end pipeline throughput over the
// 22-device corpus and writes the results to BENCH_pipeline.json.
//
// Two experiments run:
//
//   - batch: the packed corpus analyzed via firmres.AnalyzeImages at each
//     worker count, reporting ns/op (one op = the whole corpus), images/sec,
//     and the speedup relative to -j 1. The pipeline clamps -j to
//     GOMAXPROCS for its compute-bound pools, so each row also records the
//     effective worker count; reps are interleaved round-robin across
//     counts and rows with equal effective counts share pooled samples
//     (see batchSweep), so identical configurations report as identical
//     instead of diverging on scheduler jitter.
//   - facts_reuse: the single-image win from the shared facts layer, which
//     is real at any CPU count. The taint engine and the lint passes both
//     need per-function CFG/def-use/constprop solutions; "cold" computes
//     them independently per consumer (the pre-facts layout), "shared" reads
//     both through one facts.Program as the pipeline does.
//   - alloc: heap-allocation cost (allocs/op, bytes/op via runtime.MemStats
//     deltas) of one cold single-image analysis and of the full corpus
//     batch at -j 1 — the regression guard for the hot-path memory work.
//   - cache: the corpus-scale win from the persistent result cache
//     (WithCache). "cold" analyzes the corpus into an empty cache directory
//     (computation plus population cost); "warm" re-runs the same sweep
//     against the populated cache, where every cacheable image is a disk
//     read. The warm speedup is the re-scan argument made concrete.
//
// After the timed experiments, one extra untimed corpus pass runs with
// metrics (and, under -trace-json, span recording) enabled: it feeds the
// facts-store hit/miss stats in the output JSON and can emit the whole
// corpus sweep as a single Chrome trace_event file. Keeping instrumentation
// off the timed passes keeps the throughput numbers honest.
//
// All numbers are measured on the host that runs the command — nothing is
// estimated or extrapolated.
//
// Usage:
//
//	firmbench [-out BENCH_pipeline.json] [-reps 3] [-jobs 1,2,4,8]
//	          [-trace-json FILE] [-pprof ADDR|PREFIX]
//	firmbench -validate FILE
//
// -pprof with a ':' in the value serves net/http/pprof on that address
// while benchmarking; any other value is a file prefix — the run writes
// PREFIX.cpu.pprof (CPU, streamed) and PREFIX.heap.pprof (heap, on exit).
//
// -validate re-reads a previously written output file, checks it against
// the expected schema, and enforces the sanity invariants CI's bench-smoke
// step cares about (facts_reuse.speedup >= 1.0, cache.speedup > 1.0) —
// shape and monotonicity only, never absolute latency, so it is safe on
// noisy shared runners.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"firmres"
	"firmres/internal/corpus"
	"firmres/internal/facts"
	"firmres/internal/lint"
	"firmres/internal/parallel"
	"firmres/internal/pcode"
	"firmres/internal/profio"
	"firmres/internal/taint"
)

type batchRow struct {
	Jobs int `json:"jobs"`
	// EffectiveWorkers is the pool size the run actually used:
	// parallel.CPUWorkers clamps -j to GOMAXPROCS for the compute-bound
	// batch pool. Rows with equal effective workers executed the identical
	// configuration, so the sweep pools their samples (see batchSweep).
	EffectiveWorkers int     `json:"effective_workers"`
	NsPerOp          int64   `json:"ns_per_op"` // one op = the full corpus batch
	ImagesPerSec     float64 `json:"images_per_sec"`
	SpeedupVsJ1      float64 `json:"speedup_vs_j1"`
}

type factsReuse struct {
	ColdNs   int64   `json:"cold_ns"`   // taint + lint each building private artifacts
	SharedNs int64   `json:"shared_ns"` // both reading through one facts.Program
	Speedup  float64 `json:"speedup"`
}

// factsStats summarizes the facts-store request/build counters from the
// instrumented pass: hits = requests − builds (every artifact is built at
// most once per function, every later request is a cache hit).
type factsStats struct {
	Requests int64   `json:"requests"`
	Builds   int64   `json:"builds"`
	Hits     int64   `json:"hits"`
	HitRate  float64 `json:"hit_rate"`
}

// cacheBench is the cold-vs-warm persistent-cache sweep: one corpus run
// into an empty cache directory, then the same run against the populated
// one. Hits/Misses are the warm run's counters (the script-only devices
// fail fatally, are never cached, and recompute as misses every time).
type cacheBench struct {
	ColdNs  int64   `json:"cold_ns"`
	WarmNs  int64   `json:"warm_ns"`
	Speedup float64 `json:"speedup"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
}

// allocRow is one heap-allocation measurement: runtime.MemStats deltas
// (Mallocs, TotalAlloc) around the operation, averaged over the sampled
// runs.
type allocRow struct {
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// allocStats is the allocation section of the report: the hot-path memory
// cost of one cold single-image analysis and of the full corpus batch at
// -j 1 (single-worker, so the deltas attribute to the pipeline alone).
type allocStats struct {
	SingleImage allocRow `json:"single_image"`
	Batch       allocRow `json:"batch"`
}

type report struct {
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	Images     int        `json:"corpus_images"`
	Reps       int        `json:"reps"` // best-of-N per row
	Batch      []batchRow `json:"batch"`
	Alloc      allocStats `json:"alloc"`
	FactsReuse factsReuse `json:"facts_reuse"`
	Cache      cacheBench `json:"cache"`
	Facts      factsStats `json:"facts"` // from the untimed instrumented pass
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output file")
	reps := flag.Int("reps", 3, "repetitions per configuration (best is kept)")
	jobsFlag := flag.String("jobs", "1,2,4,8", "comma-separated worker counts")
	traceJSON := flag.String("trace-json", "", "write the instrumented corpus sweep as one Chrome trace_event `file`")
	pprofAddr := flag.String("pprof", "", "with ':' in `mode`, serve net/http/pprof on that address while benchmarking; otherwise write <mode>.cpu.pprof and <mode>.heap.pprof")
	validate := flag.String("validate", "", "validate a previously written output `file` (schema + sanity invariants) and exit")
	flag.Parse()

	if *validate != "" {
		if err := validateReport(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "firmbench: validate %s: %v\n", *validate, err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema and sanity checks ok\n", *validate)
		return
	}

	if *pprofAddr != "" {
		warn := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "firmbench: "+format+"\n", args...)
		}
		stop, err := profio.Start(*pprofAddr, warn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "firmbench: %v\n", err)
			os.Exit(2)
		}
		defer stop()
	}

	var jobs []int
	for _, s := range strings.Split(*jobsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "firmbench: bad -jobs entry %q\n", s)
			os.Exit(2)
		}
		jobs = append(jobs, n)
	}

	imgs, err := packCorpus()
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmbench: %v\n", err)
		os.Exit(1)
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Images:     len(imgs),
		Reps:       *reps,
	}

	bests, err := batchSweep(imgs, jobs, *reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmbench: batch sweep: %v\n", err)
		os.Exit(1)
	}
	var j1 time.Duration
	for i, j := range jobs {
		best := bests[i]
		if j == 1 || j1 == 0 {
			j1 = best
		}
		row := batchRow{
			Jobs:             j,
			EffectiveWorkers: parallel.CPUWorkers(j),
			NsPerOp:          best.Nanoseconds(),
			ImagesPerSec:     float64(len(imgs)) / best.Seconds(),
			SpeedupVsJ1:      float64(j1) / float64(best),
		}
		rep.Batch = append(rep.Batch, row)
		fmt.Printf("batch -j %d (%d effective): %v/op  %.2f images/sec  %.2fx vs -j 1\n",
			j, row.EffectiveWorkers, best, row.ImagesPerSec, row.SpeedupVsJ1)
	}

	al, err := measureAlloc(imgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmbench: alloc sweep: %v\n", err)
		os.Exit(1)
	}
	rep.Alloc = al
	fmt.Printf("alloc: single image %d allocs/op %d B/op, batch %d allocs/op %d B/op\n",
		al.SingleImage.AllocsPerOp, al.SingleImage.BytesPerOp,
		al.Batch.AllocsPerOp, al.Batch.BytesPerOp)

	fr, err := measureFactsReuse(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmbench: facts reuse: %v\n", err)
		os.Exit(1)
	}
	rep.FactsReuse = fr
	fmt.Printf("facts reuse: cold %v, shared %v, %.2fx\n",
		time.Duration(fr.ColdNs), time.Duration(fr.SharedNs), fr.Speedup)

	cb, err := measureCache(imgs, *reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmbench: cache sweep: %v\n", err)
		os.Exit(1)
	}
	rep.Cache = cb
	fmt.Printf("cache: cold %v, warm %v, %.2fx (%d hits, %d misses warm)\n",
		time.Duration(cb.ColdNs), time.Duration(cb.WarmNs), cb.Speedup, cb.Hits, cb.Misses)

	fs, err := instrumentedPass(imgs, *traceJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmbench: instrumented pass: %v\n", err)
		os.Exit(1)
	}
	rep.Facts = fs
	fmt.Printf("facts store: %d requests, %d builds, %.1f%% hit rate\n",
		fs.Requests, fs.Builds, 100*fs.HitRate)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "firmbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func packCorpus() ([][]byte, error) {
	var imgs [][]byte
	for id := 1; id <= 22; id++ {
		img, err := corpus.BuildImage(corpus.Device(id))
		if err != nil {
			return nil, fmt.Errorf("device %d: %w", id, err)
		}
		imgs = append(imgs, img.Pack())
	}
	return imgs, nil
}

// batchSweep analyzes the corpus reps times at each worker count and
// returns the fastest wall-clock duration per count, aligned with jobs.
//
// Two measures keep the cross-row comparison (speedup_vs_j1) honest on a
// noisy host:
//
//   - The reps are interleaved round-robin across worker counts rather
//     than measured one count at a time, so wall-clock drift over the
//     sweep (CPU frequency, page-cache state, heap aging in this
//     long-lived process) lands on every count equally instead of
//     flattering whichever row ran in a fast window. Each sample also
//     starts from a freshly collected heap so no row inherits the
//     previous sample's garbage.
//
//   - Rows whose effective pool size is identical after the
//     parallel.CPUWorkers clamp executed the exact same configuration —
//     on a GOMAXPROCS=1 host that is every row — so their samples are
//     pooled into one distribution and they share one best. Reporting
//     separately-sampled minima for identical configurations would
//     manufacture spurious speedups (or slowdowns) out of scheduler
//     jitter; pooling reports the equality that is actually there, and
//     on a multi-CPU host distinct effective sizes still get genuinely
//     independent measurements.
func batchSweep(imgs [][]byte, jobs []int, reps int) ([]time.Duration, error) {
	bests := make([]time.Duration, len(jobs))
	for r := 0; r < reps; r++ {
		for i, j := range jobs {
			runtime.GC()
			start := time.Now()
			br, err := firmres.AnalyzeImages(context.Background(), imgs,
				firmres.WithLint(), firmres.WithWorkers(j))
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("-j %d: %w", j, err)
			}
			if br.Summary.Reports != 20 { // devices 21-22 are script-only
				return nil, fmt.Errorf("-j %d: reports = %d, want 20", j, br.Summary.Reports)
			}
			if bests[i] == 0 || d < bests[i] {
				bests[i] = d
			}
		}
	}
	// Pool rows that ran the identical effective configuration.
	for i := range jobs {
		for k := range jobs {
			if parallel.CPUWorkers(jobs[k]) == parallel.CPUWorkers(jobs[i]) && bests[k] < bests[i] {
				bests[i] = bests[k]
			}
		}
	}
	return bests, nil
}

// measureAlloc runs the allocation sweep: MemStats deltas around a cold
// single-image analysis (averaged over a few runs) and around one full
// corpus batch at -j 1. Untimed — GC runs between sections, so the
// numbers are heap traffic, not wall clock.
func measureAlloc(imgs [][]byte) (allocStats, error) {
	single, err := allocOf(3, func() error {
		rep, err := firmres.AnalyzeImage(imgs[0], firmres.WithLint())
		if err != nil {
			return err
		}
		if len(rep.Messages) == 0 {
			return fmt.Errorf("single-image run reconstructed no messages")
		}
		return nil
	})
	if err != nil {
		return allocStats{}, err
	}
	batch, err := allocOf(1, func() error {
		br, err := firmres.AnalyzeImages(context.Background(), imgs,
			firmres.WithLint(), firmres.WithWorkers(1))
		if err != nil {
			return err
		}
		if br.Summary.Reports != 20 {
			return fmt.Errorf("reports = %d, want 20", br.Summary.Reports)
		}
		return nil
	})
	if err != nil {
		return allocStats{}, err
	}
	return allocStats{SingleImage: single, Batch: batch}, nil
}

// allocOf measures the per-op Mallocs/TotalAlloc deltas of runs calls to op.
func allocOf(runs int, op func() error) (allocRow, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if err := op(); err != nil {
			return allocRow{}, err
		}
	}
	runtime.ReadMemStats(&after)
	return allocRow{
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(runs),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(runs),
	}, nil
}

// measureFactsReuse times the taint engine plus the lint passes over one
// device-cloud executable, first with per-consumer artifact computation
// (cold) and then through a shared facts store, best of reps each.
func measureFactsReuse(reps int) (factsReuse, error) {
	bin, err := corpus.EmitDeviceCloudBinary(corpus.Device(17))
	if err != nil {
		return factsReuse{}, err
	}
	runner, err := lint.NewRunner(nil)
	if err != nil {
		return factsReuse{}, err
	}
	ctx := context.Background()

	// One arm is well under a millisecond, so a single -reps 1 sample is
	// scheduler noise; floor the sample count and average an inner batch
	// of runs per timed sample so best-of converges even in the CI smoke
	// run. Both knobs rose (8→16 samples, 1→4 runs per sample) when the
	// hot-path memory work shrank the arms enough that single-run samples
	// no longer reliably separated the sharing win from jitter.
	iters := reps
	if iters < 16 {
		iters = 16
	}
	const inner = 4 // analyses averaged per timed sample
	var cold, shared time.Duration
	for r := -1; r < iters; r++ {
		// Cold: each consumer lifts and solves on its own (lifting included
		// in both arms so the comparison isolates the artifact sharing).
		start := time.Now()
		for k := 0; k < inner; k++ {
			progA, err := pcode.LiftProgram(bin)
			if err != nil {
				return factsReuse{}, err
			}
			taint.NewEngine(progA, taint.Options{}).Analyze()
			runner.Run(progA, "/bin/cloudd")
		}
		d := time.Since(start) / inner
		if r >= 0 && (cold == 0 || d < cold) { // r == -1 is untimed warmup
			cold = d
		}

		// Shared: both consumers read through one facts.Program.
		start = time.Now()
		for k := 0; k < inner; k++ {
			progB, err := pcode.LiftProgram(bin)
			if err != nil {
				return factsReuse{}, err
			}
			fx := facts.New(progB)
			taint.NewEngineFacts(fx, taint.Options{}).AnalyzeContext(ctx, 1)
			runner.RunFacts(ctx, fx, "/bin/cloudd", 1)
		}
		d = time.Since(start) / inner
		if r >= 0 && (shared == 0 || d < shared) {
			shared = d
		}
	}
	return factsReuse{
		ColdNs:   cold.Nanoseconds(),
		SharedNs: shared.Nanoseconds(),
		Speedup:  float64(cold) / float64(shared),
	}, nil
}

// measureCache times a cold corpus sweep into an empty cache directory and
// then the warm sweep against the populated one (best of reps). Both runs
// analyze sequentially (-j 1 semantics) so the cold-vs-warm ratio isolates
// the cache, not the scheduler.
func measureCache(imgs [][]byte, reps int) (cacheBench, error) {
	dir, err := os.MkdirTemp("", "firmbench-cache-")
	if err != nil {
		return cacheBench{}, err
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	opts := []firmres.Option{firmres.WithLint(), firmres.WithCache(dir)}

	start := time.Now()
	br, err := firmres.AnalyzeImages(ctx, imgs, opts...)
	cold := time.Since(start)
	if err != nil {
		return cacheBench{}, err
	}
	if br.Summary.Cache == nil || br.Summary.Cache.Hits != 0 {
		return cacheBench{}, fmt.Errorf("cold run saw cache hits: %+v", br.Summary.Cache)
	}

	var warm time.Duration
	var hits, misses int64
	for r := 0; r < reps; r++ {
		start = time.Now()
		br, err = firmres.AnalyzeImages(ctx, imgs, opts...)
		d := time.Since(start)
		if err != nil {
			return cacheBench{}, err
		}
		if br.Summary.Cache == nil || br.Summary.Cache.Hits == 0 {
			return cacheBench{}, fmt.Errorf("warm run never hit the cache: %+v", br.Summary.Cache)
		}
		if warm == 0 || d < warm {
			warm = d
			hits, misses = br.Summary.Cache.Hits, br.Summary.Cache.Misses
		}
	}
	return cacheBench{
		ColdNs:  cold.Nanoseconds(),
		WarmNs:  warm.Nanoseconds(),
		Speedup: float64(cold) / float64(warm),
		Hits:    hits,
		Misses:  misses,
	}, nil
}

// validateReport is the CI bench-smoke gate: strict-schema decode plus the
// shape invariants that must hold on any host. Deliberately no absolute
// latency thresholds — shared runners are too noisy for those.
func validateReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var rep report
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("schema: %w", err)
	}
	switch {
	case rep.GOMAXPROCS < 1:
		return fmt.Errorf("gomaxprocs = %d, want >= 1", rep.GOMAXPROCS)
	case rep.NumCPU < 1:
		return fmt.Errorf("num_cpu = %d, want >= 1", rep.NumCPU)
	case rep.Images < 1:
		return fmt.Errorf("corpus_images = %d, want >= 1", rep.Images)
	case rep.Reps < 1:
		return fmt.Errorf("reps = %d, want >= 1", rep.Reps)
	case len(rep.Batch) == 0:
		return fmt.Errorf("batch table is empty")
	}
	base := rep.Batch[0]
	for _, row := range rep.Batch {
		if row.Jobs == 1 {
			base = row
		}
	}
	for _, row := range rep.Batch {
		if row.Jobs < 1 || row.EffectiveWorkers < 1 || row.NsPerOp <= 0 ||
			row.ImagesPerSec <= 0 || row.SpeedupVsJ1 <= 0 {
			return fmt.Errorf("implausible batch row: %+v", row)
		}
		// Rows clamped to the same effective pool as the -j 1 baseline ran
		// the identical configuration; batchSweep pools their samples, so
		// anything but exact equality means the sweep didn't pool.
		if row.EffectiveWorkers == base.EffectiveWorkers && row.NsPerOp != base.NsPerOp {
			return fmt.Errorf("batch -j %d: %d ns/op differs from -j %d baseline (%d ns/op) despite equal effective workers (%d)",
				row.Jobs, row.NsPerOp, base.Jobs, base.NsPerOp, row.EffectiveWorkers)
		}
	}
	// The alloc section must be present and plausible: any pipeline run
	// allocates, so zero or negative rows mean the sweep never ran or the
	// counters wrapped. The batch analyzes every image the single row
	// analyzes once, so it can never allocate less.
	for _, row := range []allocRow{rep.Alloc.SingleImage, rep.Alloc.Batch} {
		if row.AllocsPerOp <= 0 || row.BytesPerOp <= 0 {
			return fmt.Errorf("implausible alloc row: %+v", row)
		}
	}
	if rep.Alloc.Batch.AllocsPerOp < rep.Alloc.SingleImage.AllocsPerOp {
		return fmt.Errorf("alloc: batch (%d allocs/op) below single image (%d allocs/op)",
			rep.Alloc.Batch.AllocsPerOp, rep.Alloc.SingleImage.AllocsPerOp)
	}
	if rep.FactsReuse.ColdNs <= 0 || rep.FactsReuse.SharedNs <= 0 {
		return fmt.Errorf("implausible facts_reuse timings: %+v", rep.FactsReuse)
	}
	if rep.FactsReuse.Speedup < 1.0 {
		return fmt.Errorf("facts_reuse.speedup = %.3f, want >= 1.0 (shared facts slower than cold?)", rep.FactsReuse.Speedup)
	}
	if rep.Cache.ColdNs <= 0 || rep.Cache.WarmNs <= 0 || rep.Cache.Hits < 1 {
		return fmt.Errorf("implausible cache sweep: %+v", rep.Cache)
	}
	if rep.Cache.Speedup <= 1.0 {
		return fmt.Errorf("cache.speedup = %.3f, want > 1.0 (warm run not faster than cold?)", rep.Cache.Speedup)
	}
	if rep.Facts.Requests < 1 || rep.Facts.Builds < 1 || rep.Facts.HitRate < 0 || rep.Facts.HitRate > 1 {
		return fmt.Errorf("implausible facts stats: %+v", rep.Facts)
	}
	return nil
}

// instrumentedPass analyzes the corpus once, untimed, with metrics enabled
// — and span recording too when traceJSON names a file — then distills the
// facts-store hit/miss stats from the merged snapshot. Running it apart
// from the timed passes keeps instrumentation cost out of the throughput
// numbers.
func instrumentedPass(imgs [][]byte, traceJSON string) (factsStats, error) {
	opts := []firmres.Option{firmres.WithLint(), firmres.WithMetrics()}
	var tr *firmres.Trace
	if traceJSON != "" {
		tr = firmres.NewTrace()
		opts = append(opts, firmres.WithTrace(tr))
	}
	br, err := firmres.AnalyzeImages(context.Background(), imgs, opts...)
	if err != nil {
		return factsStats{}, err
	}
	if tr != nil {
		f, err := os.Create(traceJSON)
		if err != nil {
			return factsStats{}, err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return factsStats{}, err
		}
		if err := f.Close(); err != nil {
			return factsStats{}, err
		}
		fmt.Printf("wrote %s\n", traceJSON)
	}
	return factsStatsOf(br.Summary.Metrics), nil
}

// factsStatsOf sums the per-artifact facts_requests_total and
// facts_builds_total counters out of a metrics snapshot.
func factsStatsOf(metrics map[string]int64) factsStats {
	var fs factsStats
	for key, v := range metrics {
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		switch name {
		case "facts_requests_total":
			fs.Requests += v
		case "facts_builds_total":
			fs.Builds += v
		}
	}
	fs.Hits = fs.Requests - fs.Builds
	if fs.Requests > 0 {
		fs.HitRate = float64(fs.Hits) / float64(fs.Requests)
	}
	return fs
}
