// Command firmserve runs the FirmRES analysis as a long-lived HTTP
// service: firmware images are uploaded, journaled into a persistent
// priority job queue, analyzed by a bounded worker fleet through one
// shared result cache, and read back as full JSON reports — the
// continuous-scanning deployment mode the paper's 147k-image crawl
// implies, rather than one CLI process per image.
//
// Usage:
//
//	firmserve [-addr host:port] [-data dir] [-cache dir] [-no-cache]
//	          [-max-inflight n] [-max-queue n] [-retries n] [-retain n]
//	          [-rate r] [-burst n] [-stage-timeout d] [-lint] [-stripped]
//	          [-drain-timeout d] [-addr-file path]
//
// API:
//
//	POST /v1/images[?priority=N]   submit raw image bytes → job JSON
//	GET  /v1/jobs                  list jobs + queue census
//	GET  /v1/jobs/{id}             job status + report when done
//	GET  /v1/jobs/{id}/events      SSE: state transitions + stage progress
//	GET  /metrics                  Prometheus text exposition
//	GET  /healthz                  200 serving / 503 draining
//
// Durability: accepted jobs are journaled before the response; a crash —
// SIGKILL included — replays queued and interrupted jobs on the next boot
// from the same -data directory. SIGTERM/SIGINT drain gracefully: intake
// stops, inflight analyses finish (bounded by -drain-timeout), queued
// jobs stay journaled, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"firmres"
	"firmres/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8787", "listen address (host:port; port 0 picks a free port)")
		dataDir      = flag.String("data", "firmserve-data", "data directory: job journal, blobs, results")
		cacheDir     = flag.String("cache", "", "persistent result cache directory (default: <data>/cache)")
		noCache      = flag.Bool("no-cache", false, "disable the result cache entirely")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent analyses (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", serve.DefaultMaxQueued, "max jobs waiting for a worker; full queue returns 429")
		retries      = flag.Int("retries", serve.DefaultMaxAttempts, "analysis attempts per job for transient failures")
		retain       = flag.Int("retain", serve.DefaultMaxTerminal, "finished jobs kept before the oldest (journal, result, unshared blob) are pruned; -1 = unlimited")
		rate         = flag.Float64("rate", 0, "per-tenant submissions per second (0 = unlimited)")
		burst        = flag.Int("burst", 16, "per-tenant burst size")
		stageTimeout = flag.Duration("stage-timeout", 0, "per-stage analysis budget (0 = unlimited)")
		lint         = flag.Bool("lint", false, "run the lint passes on every job")
		stripped     = flag.Bool("stripped", false, "force symbol recovery for stripped firmware")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for inflight jobs on SIGTERM before re-journaling them")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file once serving (for scripts)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "firmserve: unexpected arguments; firmware is submitted over HTTP (POST /v1/images)")
		return 2
	}

	cfg := serve.Config{
		DataDir:     *dataDir,
		MaxInflight: *maxInflight,
		RatePerSec:  *rate,
		Burst:       *burst,
		Queue: serve.QueueConfig{
			MaxQueued:   *maxQueue,
			MaxAttempts: *retries,
			MaxTerminal: *retain,
		},
	}
	if !*noCache {
		cfg.CacheDir = *cacheDir
		if cfg.CacheDir == "" {
			cfg.CacheDir = filepath.Join(*dataDir, "cache")
		}
	}
	if *stageTimeout > 0 {
		cfg.AnalysisOptions = append(cfg.AnalysisOptions, firmres.WithStageTimeout(*stageTimeout))
	}
	if *lint {
		cfg.AnalysisOptions = append(cfg.AnalysisOptions, firmres.WithLint())
	}
	if *stripped {
		cfg.AnalysisOptions = append(cfg.AnalysisOptions, firmres.WithStrippedMode())
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmserve: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmserve: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "firmserve: addr-file: %v\n", err)
			ln.Close()
			return 1
		}
	}

	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "firmserve: listening on %s (data=%s cache=%s workers=%d)\n",
		bound, *dataDir, cfg.CacheDir, *maxInflight)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "firmserve: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "firmserve: %v: draining (stop intake, finish inflight, journal the rest)\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = httpSrv.Shutdown(ctx) // stop intake; SSE streams end with their jobs
	if err := srv.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "firmserve: %v\n", err)
		// Queued and interrupted jobs are journaled; the next boot resumes
		// them, so a deadline overrun is an orderly exit, not data loss.
	}
	counts := srv.Queue().Counts()
	fmt.Fprintf(os.Stderr, "firmserve: drained: %d done, %d failed, %d journaled for next boot\n",
		counts.Done, counts.Failed, counts.Queued+counts.Running)
	return 0
}
