// Command firmprobe drives the probe-replay stage across the 22-device
// corpus: it generates each device's firmware image, runs the full static
// pipeline plus the probe stage against a simulated flawed cloud, and
// prints a fleet-level exploitability report — the paper's §V loop end to
// end, in one command.
//
// Usage:
//
//	firmprobe [-devices 1-22] [-chaos modes] [-seed n] [-probers n]
//	          [-timeout d] [-j N] [-json]
//
// -chaos injects seeded deterministic faults in front of every simulated
// cloud ("latency", "reset", "drop", "5xx", "slowloris", comma-separated,
// or "all"); -seed pins the fault schedule. Two runs with the same flags
// produce byte-identical output (wall-clock timings are excluded), which
// is what CI's chaos smoke diff checks.
//
// Exit codes: 0 when every probed message reached a terminal
// classification (granted / denied / invalid / probe-failed with a typed
// error); 1 when any message did not, any device failed unexpectedly, or
// any probe panicked; 2 on usage errors. Script-only corpus devices (no
// device-cloud executable) are reported and tolerated.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"firmres"
	"firmres/internal/corpus"
)

const (
	exitOK    = 0
	exitFatal = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// deviceResult is one device's outcome in the fleet report.
type deviceResult struct {
	Device  int                  `json:"device"`
	Name    string               `json:"name,omitempty"`
	Outcome string               `json:"outcome"` // "probed", "no-device-cloud-executable", or "error"
	Error   string               `json:"error,omitempty"`
	Probe   *firmres.ProbeReport `json:"probe,omitempty"`
}

// fleetReport is the deterministic JSON shape of one run.
type fleetReport struct {
	Chaos   string                `json:"chaos,omitempty"`
	Seed    int64                 `json:"seed"`
	Devices []deviceResult        `json:"devices"`
	Summary *firmres.ProbeSummary `json:"summary,omitempty"`
}

func run(w, ew io.Writer, args []string) int {
	fs := flag.NewFlagSet("firmprobe", flag.ContinueOnError)
	fs.SetOutput(ew)
	devices := fs.String("devices", "1-22", "corpus devices to probe: a range (1-22) or comma list (1,3,5)")
	chaosModes := fs.String("chaos", "", "comma-separated chaos fault modes (latency,reset,drop,5xx,slowloris or all)")
	seed := fs.Int64("seed", 0, "seed for the chaos fault schedule")
	probers := fs.Int("probers", 0, "concurrent probers per device (0 = default 8)")
	timeout := fs.Duration("timeout", 0, "per-probe-attempt timeout (0 = default 1s)")
	jobs := fs.Int("j", 0, "analyze up to N devices concurrently (0 = GOMAXPROCS)")
	asJSON := fs.Bool("json", false, "emit the fleet report as JSON")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	ids, err := parseDevices(*devices)
	if err != nil {
		fmt.Fprintf(ew, "firmprobe: %v\n", err)
		return exitUsage
	}

	imgs := make([][]byte, len(ids))
	for i, id := range ids {
		img, err := corpus.BuildImage(corpus.Device(id))
		if err != nil {
			fmt.Fprintf(ew, "firmprobe: build device %d: %v\n", id, err)
			return exitFatal
		}
		imgs[i] = img.Pack()
	}

	opts := []firmres.Option{firmres.WithProbe(), firmres.WithWorkers(*jobs)}
	if *chaosModes != "" {
		var modes []string
		for _, m := range strings.Split(*chaosModes, ",") {
			if m = strings.TrimSpace(m); m != "" {
				modes = append(modes, m)
			}
		}
		opts = append(opts, firmres.WithProbeChaos(modes...))
	}
	if *seed != 0 {
		opts = append(opts, firmres.WithProbeSeed(*seed))
	}
	if *probers > 0 {
		opts = append(opts, firmres.WithProbeProbers(*probers))
	}
	if *timeout > 0 {
		opts = append(opts, firmres.WithProbeTimeout(*timeout))
	}

	start := time.Now()
	br, err := firmres.AnalyzeImages(context.Background(), imgs, opts...)
	if err != nil {
		fmt.Fprintf(ew, "firmprobe: %v\n", err)
		return exitFatal
	}

	fleet := &fleetReport{Chaos: *chaosModes, Seed: *seed}
	exit := exitOK
	for i, res := range br.Images {
		dr := deviceResult{Device: ids[i]}
		switch {
		case errors.Is(res.Err, firmres.ErrNoDeviceCloudExecutable):
			dr.Outcome = "no-device-cloud-executable"
		case res.Err != nil:
			dr.Outcome, dr.Error = "error", res.Error
			exit = exitFatal
		default:
			dr.Name = res.Report.Device + " " + res.Report.Version
			dr.Outcome = "probed"
			dr.Probe = res.Report.Probe
			if dr.Probe == nil {
				// Probe was requested but produced no report: a missing
				// cloud spec degrades with a note; anything else is a bug.
				dr.Outcome = "error"
				dr.Error = "no probe report"
				for _, ae := range res.Report.Errors {
					if ae.Stage == "probe-replay" {
						dr.Error = ae.Detail
					}
				}
				exit = exitFatal
			} else if n := nonTerminal(dr.Probe); n > 0 {
				dr.Outcome = "error"
				dr.Error = fmt.Sprintf("%d message(s) without terminal classification", n)
				exit = exitFatal
			}
		}
		fleet.Devices = append(fleet.Devices, dr)
	}
	fleet.Summary = br.Summary.Probe

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fleet); err != nil {
			fmt.Fprintf(ew, "firmprobe: %v\n", err)
			return exitFatal
		}
		return exit
	}
	render(w, fleet, time.Since(start))
	return exit
}

// nonTerminal counts outcomes missing a terminal classification — zero by
// the probe stage's construction; anything else fails the run (CI's chaos
// smoke relies on this).
func nonTerminal(p *firmres.ProbeReport) int {
	n := 0
	for _, o := range p.Outcomes {
		switch o.Classification {
		case firmres.ProbeGranted, firmres.ProbeDenied, firmres.ProbeInvalid:
		case firmres.ProbeFailed:
			if o.ErrorKind == "" {
				n++ // failed without a typed error: not terminal
			}
		default:
			n++
		}
	}
	return n
}

func render(w io.Writer, fleet *fleetReport, elapsed time.Duration) {
	if fleet.Chaos != "" {
		fmt.Fprintf(w, "== firmprobe: chaos=%s seed=%d\n", fleet.Chaos, fleet.Seed)
	}
	for _, dr := range fleet.Devices {
		switch dr.Outcome {
		case "no-device-cloud-executable":
			fmt.Fprintf(w, "device %02d: no device-cloud executable (script-based cloud agent)\n", dr.Device)
		case "error":
			fmt.Fprintf(w, "device %02d: ERROR: %s\n", dr.Device, dr.Error)
		default:
			p := dr.Probe
			fmt.Fprintf(w, "device %02d: %-32s %2d probed: %d granted, %d denied, %d invalid, %d failed — %d exploitable\n",
				dr.Device, dr.Name, p.Probed,
				p.Counts[firmres.ProbeGranted], p.Counts[firmres.ProbeDenied],
				p.Counts[firmres.ProbeInvalid], p.Counts[firmres.ProbeFailed], p.Vulnerable)
			for _, o := range p.Outcomes {
				if !o.Vulnerable {
					continue
				}
				fmt.Fprintf(w, "  ! %-24s %-5s %s\n", o.Function, o.Transport, o.Route)
				for _, leak := range o.Leaks {
					fmt.Fprintf(w, "      %s\n", leak)
				}
			}
		}
	}
	if s := fleet.Summary; s != nil {
		fmt.Fprintf(w, "== fleet: %d probed, %d granted, %d denied, %d invalid, %d failed — %d exploitable (%v)\n",
			s.Probed, s.Granted, s.Denied, s.Invalid, s.Failed, s.Vulnerable,
			elapsed.Round(time.Millisecond))
	}
}

// parseDevices expands "1-22" / "1,3,5" / "all" into device IDs.
func parseDevices(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		s = "1-22"
	}
	var ids []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(strings.TrimSpace(lo))
			b, err2 := strconv.Atoi(strings.TrimSpace(hi))
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad device range %q", part)
			}
			for id := a; id <= b; id++ {
				ids = append(ids, id)
			}
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad device id %q", part)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if id < 1 || id > 22 {
			return nil, fmt.Errorf("device %d out of corpus range 1-22", id)
		}
	}
	return ids, nil
}
