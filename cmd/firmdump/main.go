// Command firmdump inspects firmware images and their executables: it
// lists the file tree, disassembles binaries, prints the lifted P-Code
// with semantic enrichment, and summarizes the identification features
// (anchors, handlers, parsing scores).
//
// Usage:
//
//	firmdump [-file /bin/cloudd] [-pcode] [-identify] image.img
package main

import (
	"flag"
	"fmt"
	"os"

	"firmres/internal/binfmt"
	"firmres/internal/identify"
	"firmres/internal/image"
	"firmres/internal/isa"
	"firmres/internal/pcode"
	"firmres/internal/semantics"
)

func main() {
	file := flag.String("file", "", "dump a single executable (default: list the image)")
	showPcode := flag.Bool("pcode", false, "print lifted P-Code instead of assembly")
	showIdentify := flag.Bool("identify", false, "print handler-identification features")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: firmdump [-file path] [-pcode] [-identify] image.img")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *file, *showPcode, *showIdentify); err != nil {
		fmt.Fprintln(os.Stderr, "firmdump:", err)
		os.Exit(1)
	}
}

func run(imagePath, file string, showPcode, showIdentify bool) error {
	data, err := os.ReadFile(imagePath)
	if err != nil {
		return err
	}
	img, err := image.Unpack(data)
	if err != nil {
		return err
	}
	if file == "" {
		return listImage(img)
	}
	f, ok := img.File(file)
	if !ok {
		return fmt.Errorf("no file %q in image", file)
	}
	if !f.IsBinary() {
		fmt.Printf("%s: not a binary (%d bytes)\n", file, len(f.Data))
		return nil
	}
	bin, err := binfmt.Unmarshal(f.Data)
	if err != nil {
		return err
	}
	return dumpBinary(bin, showPcode, showIdentify)
}

func listImage(img *image.Image) error {
	fmt.Printf("%s (%s), %d files\n", img.Device, img.Version, len(img.Files))
	for _, f := range img.Files {
		kind := "data"
		switch {
		case f.IsBinary():
			kind = "binary"
		case f.IsScript():
			kind = "script"
		}
		exec := " "
		if f.IsExec() {
			exec = "x"
		}
		fmt.Printf("  %s %-7s %7d  %s\n", exec, kind, len(f.Data), f.Path)
	}
	return nil
}

func dumpBinary(bin *binfmt.Binary, showPcode, showIdentify bool) error {
	fmt.Printf("binary %s: text %d bytes @%#x, data %d bytes @%#x, %d imports, %d functions\n",
		bin.Name, len(bin.Text), bin.TextBase, len(bin.Data), bin.DataBase,
		len(bin.Imports), len(bin.Funcs))

	prog, err := pcode.LiftProgram(bin)
	if err != nil {
		return err
	}
	if showIdentify {
		res := identify.Analyze(prog)
		fmt.Printf("device-cloud: %v, %d handler(s)\n", res.IsDeviceCloud, len(res.Handlers))
		for _, h := range res.Handlers {
			fmt.Printf("  handler in=%s out=%s score=%.2f parse=%s async=%v root=%s\n",
				h.In.Op().Call.Name, h.Out.Op().Call.Name, h.Score,
				h.ParseFn.Name(), h.Async, h.Root.Name())
		}
		return nil
	}

	enricher := semantics.NewEnricher(bin)
	for _, fn := range prog.Funcs {
		fmt.Printf("\n%s (arity %d, %d bytes @%#x):\n",
			fn.Name(), fn.Sym.NumParams, fn.Sym.Size, fn.Addr())
		if showPcode {
			for i := range fn.Ops {
				fmt.Printf("  %#06x.%d  %s\n", fn.Ops[i].Addr, fn.Ops[i].Seq,
					enricher.Op(fn, i))
			}
			continue
		}
		body := bin.Text[fn.Addr()-bin.TextBase : fn.Sym.End()-bin.TextBase]
		instrs, err := isa.DecodeAll(body)
		if err != nil {
			return err
		}
		for i, in := range instrs {
			addr := fn.Addr() + uint32(i*isa.InstrSize)
			note := ""
			if in.Op == isa.OpCallI && int(in.Imm) < len(bin.Imports) {
				note = "  ; " + bin.Imports[in.Imm].Name
			}
			if (in.Op == isa.OpLA || in.Op == isa.OpLI) && bin.InData(uint32(in.Imm)) {
				if s, ok := bin.StringAt(uint32(in.Imm)); ok {
					note = fmt.Sprintf("  ; %q", s)
				}
			}
			fmt.Printf("  %#06x  %s%s\n", addr, in, note)
		}
	}
	return nil
}
