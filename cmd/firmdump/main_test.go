package main

import (
	"os"
	"path/filepath"
	"testing"

	"firmres/internal/corpus"
)

func writeImage(t *testing.T, id int) string {
	t.Helper()
	img, err := corpus.BuildImage(corpus.Device(id))
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fw.img")
	if err := os.WriteFile(path, img.Pack(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestListImage(t *testing.T) {
	if err := run(writeImage(t, 5), "", false, false); err != nil {
		t.Errorf("list: %v", err)
	}
}

func TestDisassemble(t *testing.T) {
	if err := run(writeImage(t, 5), "/bin/cloudd", false, false); err != nil {
		t.Errorf("disasm: %v", err)
	}
}

func TestDumpPcode(t *testing.T) {
	if err := run(writeImage(t, 5), "/bin/cloudd", true, false); err != nil {
		t.Errorf("pcode: %v", err)
	}
}

func TestDumpIdentify(t *testing.T) {
	if err := run(writeImage(t, 5), "/bin/cloudd", false, true); err != nil {
		t.Errorf("identify: %v", err)
	}
}

func TestDumpNonBinary(t *testing.T) {
	if err := run(writeImage(t, 5), "/etc/cloud.conf", false, false); err != nil {
		t.Errorf("non-binary file: %v", err)
	}
}

func TestDumpErrors(t *testing.T) {
	if err := run(writeImage(t, 5), "/missing", false, false); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "none.img"), "", false, false); err == nil {
		t.Error("missing image accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.img")
	os.WriteFile(bad, []byte("garbage"), 0o644)
	if err := run(bad, "", false, false); err == nil {
		t.Error("corrupt image accepted")
	}
}
