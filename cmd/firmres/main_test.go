package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"firmres"
	"firmres/internal/corpus"
)

func writeImage(t *testing.T, id int) string {
	t.Helper()
	img, err := corpus.BuildImage(corpus.Device(id))
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fw.img")
	if err := os.WriteFile(path, img.Pack(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeTextOutput(t *testing.T) {
	var out bytes.Buffer
	partial, err := analyze(&out, writeImage(t, 5), options{}, nil)
	if err != nil {
		t.Errorf("analyze: %v", err)
	}
	if partial {
		t.Error("clean image reported partial")
	}
	if !strings.Contains(out.String(), "messages reconstructed") {
		t.Errorf("unexpected output: %q", out.String())
	}
}

func TestAnalyzeJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, writeImage(t, 5), options{asJSON: true}, nil); err != nil {
		t.Errorf("analyze -json: %v", err)
	}
	var report firmres.Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Errorf("output is not valid JSON: %v", err)
	}
}

func TestAnalyzeLintTextOutput(t *testing.T) {
	path := writeImage(t, 11)
	render := func() string {
		var out bytes.Buffer
		if _, err := analyze(&out, path, options{lint: true}, nil); err != nil {
			t.Fatalf("analyze -lint: %v", err)
		}
		return out.String()
	}
	text := render()
	for _, want := range []string{"lint: 2 finding(s)", "hardcoded-secret", "svc_auth_fallback", "dead-store", "svc_stats_tick"} {
		if !strings.Contains(text, want) {
			t.Errorf("lint output lacks %q:\n%s", want, text)
		}
	}
	if again := render(); again != text {
		t.Errorf("lint text output not byte-identical across runs:\n--- a ---\n%s--- b ---\n%s", text, again)
	}
}

func TestAnalyzeLintRulesFilter(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, writeImage(t, 11), options{lintRules: "dead-store"}, nil); err != nil {
		t.Fatalf("analyze -lint-rules: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "dead-store") {
		t.Errorf("selected rule missing: %q", text)
	}
	if strings.Contains(text, "hardcoded-secret svc_auth_fallback") {
		t.Errorf("rule filter leaked other rules: %q", text)
	}
	if _, err := analyze(&out, writeImage(t, 11), options{lintRules: "bogus"}, nil); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestAnalyzeLintCleanDevice(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, writeImage(t, 4), options{lint: true}, nil); err != nil {
		t.Fatalf("analyze -lint: %v", err)
	}
	if !strings.Contains(out.String(), "lint: clean") {
		t.Errorf("clean device not reported clean: %q", out.String())
	}
}

func TestAnalyzeLintSARIFOutput(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, writeImage(t, 11), options{lintJSON: true}, nil); err != nil {
		t.Fatalf("analyze -lint-json: %v", err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "firmres-lint" {
		t.Errorf("SARIF shape wrong: %+v", doc)
	}
	if len(doc.Runs[0].Results) != 2 {
		t.Errorf("SARIF results = %d, want 2", len(doc.Runs[0].Results))
	}
}

func TestAnalyzeTimingsFlag(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, writeImage(t, 5), options{timings: true}, nil); err != nil {
		t.Fatalf("analyze -timings: %v", err)
	}
	text := out.String()
	for _, want := range []string{"stage timings:", "pinpoint-executables", "lint-passes"} {
		if !strings.Contains(text, want) {
			t.Errorf("timings output lacks %q: %q", want, text)
		}
	}
}

func TestAnalyzeScriptOnlyIsNotAnError(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, writeImage(t, 21), options{}, nil); err != nil {
		t.Errorf("script-only device treated as error: %v", err)
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, filepath.Join(t.TempDir(), "nope.img"), options{}, nil); err == nil {
		t.Error("missing file accepted")
	}
}

// TestAnalyzePartialReportRenders: an image with one rotten executable must
// still produce a rendered report, marked PARTIAL with the skipped work
// named, and analyze must signal partial rather than fatal.
func TestAnalyzePartialReportRenders(t *testing.T) {
	img, err := corpus.BuildImage(corpus.Device(5))
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	// Plant a corrupt binary alongside the real device-cloud executable.
	img.AddFile("/bin/rotten", 1, []byte("FRB1 this is not a real binary"))
	path := filepath.Join(t.TempDir(), "fw.img")
	if err := os.WriteFile(path, img.Pack(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	partial, err := analyze(&out, path, options{}, nil)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !partial {
		t.Fatal("degraded analysis not reported as partial")
	}
	text := out.String()
	if !strings.Contains(text, "PARTIAL") {
		t.Errorf("partial report not marked: %q", text)
	}
	if !strings.Contains(text, "corrupt-binary") || !strings.Contains(text, "/bin/rotten") {
		t.Errorf("skipped work not named: %q", text)
	}
	if !strings.Contains(text, "messages reconstructed") {
		t.Errorf("partial report lost the message table: %q", text)
	}
}

// TestAnalyzeStageTimeoutFlag: a pathologically small budget still yields a
// rendered partial result, never a hang or crash.
func TestAnalyzeStageTimeoutFlag(t *testing.T) {
	var out bytes.Buffer
	partial, err := analyze(&out, writeImage(t, 5), options{stageTimeout: time.Nanosecond}, nil)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !partial {
		t.Error("nanosecond budget produced a clean report")
	}
	if !strings.Contains(out.String(), "stage-timeout") {
		t.Errorf("timeout not rendered: %q", out.String())
	}
}
