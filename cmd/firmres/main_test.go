package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"firmres"
	"firmres/internal/corpus"
)

func writeImage(t *testing.T, id int) string {
	t.Helper()
	img, err := corpus.BuildImage(corpus.Device(id))
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fw.img")
	if err := os.WriteFile(path, img.Pack(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeTextOutput(t *testing.T) {
	var out bytes.Buffer
	partial, err := analyze(&out, writeImage(t, 5), options{})
	if err != nil {
		t.Errorf("analyze: %v", err)
	}
	if partial {
		t.Error("clean image reported partial")
	}
	if !strings.Contains(out.String(), "messages reconstructed") {
		t.Errorf("unexpected output: %q", out.String())
	}
}

func TestAnalyzeJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, writeImage(t, 5), options{asJSON: true}); err != nil {
		t.Errorf("analyze -json: %v", err)
	}
	var report firmres.Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Errorf("output is not valid JSON: %v", err)
	}
}

func TestAnalyzeScriptOnlyIsNotAnError(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, writeImage(t, 21), options{}); err != nil {
		t.Errorf("script-only device treated as error: %v", err)
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	var out bytes.Buffer
	if _, err := analyze(&out, filepath.Join(t.TempDir(), "nope.img"), options{}); err == nil {
		t.Error("missing file accepted")
	}
}

// TestAnalyzePartialReportRenders: an image with one rotten executable must
// still produce a rendered report, marked PARTIAL with the skipped work
// named, and analyze must signal partial rather than fatal.
func TestAnalyzePartialReportRenders(t *testing.T) {
	img, err := corpus.BuildImage(corpus.Device(5))
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	// Plant a corrupt binary alongside the real device-cloud executable.
	img.AddFile("/bin/rotten", 1, []byte("FRB1 this is not a real binary"))
	path := filepath.Join(t.TempDir(), "fw.img")
	if err := os.WriteFile(path, img.Pack(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	partial, err := analyze(&out, path, options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !partial {
		t.Fatal("degraded analysis not reported as partial")
	}
	text := out.String()
	if !strings.Contains(text, "PARTIAL") {
		t.Errorf("partial report not marked: %q", text)
	}
	if !strings.Contains(text, "corrupt-binary") || !strings.Contains(text, "/bin/rotten") {
		t.Errorf("skipped work not named: %q", text)
	}
	if !strings.Contains(text, "messages reconstructed") {
		t.Errorf("partial report lost the message table: %q", text)
	}
}

// TestAnalyzeStageTimeoutFlag: a pathologically small budget still yields a
// rendered partial result, never a hang or crash.
func TestAnalyzeStageTimeoutFlag(t *testing.T) {
	var out bytes.Buffer
	partial, err := analyze(&out, writeImage(t, 5), options{stageTimeout: time.Nanosecond})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !partial {
		t.Error("nanosecond budget produced a clean report")
	}
	if !strings.Contains(out.String(), "stage-timeout") {
		t.Errorf("timeout not rendered: %q", out.String())
	}
}
