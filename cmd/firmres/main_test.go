package main

import (
	"os"
	"path/filepath"
	"testing"

	"firmres/internal/corpus"
)

func writeImage(t *testing.T, id int) string {
	t.Helper()
	img, err := corpus.BuildImage(corpus.Device(id))
	if err != nil {
		t.Fatalf("BuildImage: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fw.img")
	if err := os.WriteFile(path, img.Pack(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeTextOutput(t *testing.T) {
	if err := analyze(writeImage(t, 5), "", false); err != nil {
		t.Errorf("analyze: %v", err)
	}
}

func TestAnalyzeJSONOutput(t *testing.T) {
	if err := analyze(writeImage(t, 5), "", true); err != nil {
		t.Errorf("analyze -json: %v", err)
	}
}

func TestAnalyzeScriptOnlyIsNotAnError(t *testing.T) {
	if err := analyze(writeImage(t, 21), "", false); err != nil {
		t.Errorf("script-only device treated as error: %v", err)
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	if err := analyze(filepath.Join(t.TempDir(), "nope.img"), "", false); err == nil {
		t.Error("missing file accepted")
	}
}
