// Command firmres analyzes firmware images: it pinpoints the device-cloud
// executable, reconstructs the device-cloud messages, and prints the
// recovered fields, formats, and access-control findings.
//
// Usage:
//
//	firmres [-model file] [-json] [-stage-timeout d] [-keep-going] [-j N]
//	        [-lint] [-lint-rules r1,r2] [-lint-json] [-timings] [-stripped]
//	        [-probe] [-probe-chaos modes] [-probe-seed n] [-probe-probers n]
//	        [-trace] [-trace-json file] [-metrics file] [-progress]
//	        [-cache dir] [-cache-max-bytes n] [-no-cache] [-cache-clear]
//	        [-pprof addr] image.img [image2.img ...]
//
// With -j N (N != 1) the images are analyzed as one batch on up to N
// concurrent workers (N <= 0 means GOMAXPROCS) and the reports print in
// input order; -j 1 (the default) analyzes sequentially. Output is
// identical either way.
//
// Caching: -cache DIR serves every analysis from a persistent
// content-addressed result cache (and stores fresh results back), keyed on
// the image bytes, the effective analysis options, and the pipeline
// version — warm re-runs of a corpus become disk reads. -cache-max-bytes
// caps the directory size (LRU eviction), -cache-clear empties it before
// the run (with no images, it just clears and exits), and -no-cache
// disables caching even when -cache is given. Cached output is
// byte-identical to a fresh analysis.
//
// Stripped firmware: -stripped forces the symbol-recovery pass — function
// boundaries, string constants, and extern identities are rebuilt before
// analysis (the pass also engages automatically on binaries that arrive
// without a symbol table). The report gains a recovery section listing the
// per-extern bindings and their confidence; -stripped changes the cache key,
// so symbol-full cached results are never served for a stripped run.
//
// Probing: -probe replays every reconstructed message against a simulated
// cloud built from the device's corpus spec and reports per-message
// exploitability (the paper's §V loop). -probe-chaos injects seeded
// deterministic faults ("latency", "reset", "drop", "5xx", "slowloris", or
// "all") in front of the cloud; -probe-seed pins the fault schedule —
// identical seeds yield identical probe reports — and -probe-probers bounds
// the concurrent probers per device.
//
// Observability: -trace prints the hierarchical span tree of the run to
// stderr; -trace-json writes the same spans as Chrome trace_event JSON
// (chrome://tracing, Perfetto); -metrics writes the aggregated work
// counters in Prometheus text format; -progress reports per-image progress
// on stderr; -pprof with a ':' in its value serves net/http/pprof on that
// address for the duration of the run, and with any other value writes a
// CPU profile to <value>.cpu.pprof during the run plus a heap profile to
// <value>.heap.pprof on exit. None of these change the analysis output.
//
// Exit codes: 0 when every image analyzed cleanly, 1 when any image failed
// fatally, 2 on usage errors, 3 when every image produced a report but at
// least one degraded (partial results recorded in its Errors).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"firmres"
	"firmres/internal/profio"
)

// Exit codes.
const (
	exitOK      = 0
	exitFatal   = 1
	exitUsage   = 2
	exitPartial = 3
)

type options struct {
	modelPath    string
	asJSON       bool
	stageTimeout time.Duration
	lint         bool
	lintRules    string
	lintJSON     bool
	timings      bool
	stripped     bool
	probe        bool
	probeChaos   string
	probeSeed    int64
	probeProbers int
	jobs         int
	trace        bool
	traceJSON    string
	metricsPath  string
	progress     bool
	pprofAddr    string
	cacheDir     string
	cacheMax     int64
	noCache      bool
	cacheClear   bool
}

// cacheEnabled reports whether analyses should go through the persistent
// result cache.
func (o options) cacheEnabled() bool { return o.cacheDir != "" && !o.noCache }

// main delegates to run so the observability sinks' deferred writes happen
// before the process exits (os.Exit skips defers).
func main() {
	os.Exit(run())
}

func run() int {
	var opts options
	flag.StringVar(&opts.modelPath, "model", "", "trained TextCNN model file (default: keyword classifier)")
	flag.BoolVar(&opts.asJSON, "json", false, "emit the report as JSON")
	flag.DurationVar(&opts.stageTimeout, "stage-timeout", 0,
		"per-stage analysis budget; over-budget stages are skipped and recorded (0 = unlimited)")
	flag.BoolVar(&opts.lint, "lint", false,
		"run the lint passes over the identified executable and print diagnostics")
	flag.StringVar(&opts.lintRules, "lint-rules", "",
		"comma-separated lint rules to run (implies -lint; default: all)")
	flag.BoolVar(&opts.lintJSON, "lint-json", false,
		"emit lint diagnostics as a SARIF 2.1.0 document instead of the text report (implies -lint)")
	flag.BoolVar(&opts.timings, "timings", false,
		"print the per-stage timing breakdown in the text report")
	flag.BoolVar(&opts.stripped, "stripped", false,
		"force symbol recovery for stripped firmware (auto-detected for binaries without symbol tables)")
	flag.BoolVar(&opts.probe, "probe", false,
		"replay reconstructed messages against a simulated cloud and report exploitability")
	flag.StringVar(&opts.probeChaos, "probe-chaos", "",
		"comma-separated chaos fault modes injected in front of the simulated cloud (latency,reset,drop,5xx,slowloris or all; implies -probe)")
	flag.Int64Var(&opts.probeSeed, "probe-seed", 0,
		"seed for the chaos fault schedule; identical seeds give identical probe reports")
	flag.IntVar(&opts.probeProbers, "probe-probers", 0,
		"concurrent probers per device (0 = default 8); output is identical at any count")
	flag.IntVar(&opts.jobs, "j", 1,
		"analyze up to N images concurrently (0 = GOMAXPROCS; 1 = sequential)")
	flag.BoolVar(&opts.trace, "trace", false,
		"print the hierarchical span tree of the run to stderr")
	flag.StringVar(&opts.traceJSON, "trace-json", "",
		"write the run's spans as Chrome trace_event JSON to this file")
	flag.StringVar(&opts.metricsPath, "metrics", "",
		"write the run's aggregated work counters in Prometheus text format to this file")
	flag.BoolVar(&opts.progress, "progress", false,
		"report per-image progress on stderr")
	flag.StringVar(&opts.pprofAddr, "pprof", "",
		"with a ':' in the value, serve net/http/pprof on that address for the duration of the run; otherwise write <value>.cpu.pprof and <value>.heap.pprof")
	flag.StringVar(&opts.cacheDir, "cache", "",
		"serve analyses from a persistent result cache rooted at this directory (created if missing)")
	flag.Int64Var(&opts.cacheMax, "cache-max-bytes", 0,
		"cap the cache directory size; least-recently-used entries are evicted (0 = unbounded)")
	flag.BoolVar(&opts.noCache, "no-cache", false,
		"disable the result cache even when -cache is given")
	flag.BoolVar(&opts.cacheClear, "cache-clear", false,
		"clear the -cache directory before the run (with no images: clear and exit)")
	keepGoing := flag.Bool("keep-going", false,
		"keep analyzing remaining images after a fatal per-image failure")
	flag.Parse()
	if opts.cacheClear {
		if opts.cacheDir == "" {
			fmt.Fprintln(os.Stderr, "firmres: -cache-clear requires -cache DIR")
			return exitUsage
		}
		if err := firmres.ClearCache(opts.cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "firmres: cache-clear: %v\n", err)
			return exitFatal
		}
		if flag.NArg() == 0 {
			return exitOK
		}
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: firmres [-model file] [-json] [-stage-timeout d] [-keep-going] [-j N] [-lint] [-lint-rules r1,r2] [-lint-json] [-timings] [-stripped] [-probe] [-probe-chaos modes] [-probe-seed n] [-probe-probers n] [-trace] [-trace-json file] [-metrics file] [-progress] [-cache dir] [-cache-max-bytes n] [-no-cache] [-cache-clear] [-pprof addr] image.img ...")
		return exitUsage
	}
	if opts.pprofAddr != "" {
		warn := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "firmres: "+format+"\n", args...)
		}
		stop, err := profio.Start(opts.pprofAddr, warn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "firmres: %v\n", err)
			return exitUsage
		}
		defer stop()
	}
	sink := newObsSink(opts)
	defer sink.finish()
	if opts.jobs != 1 {
		return runBatch(os.Stdout, flag.Args(), opts, *keepGoing, sink)
	}
	exit := exitOK
	paths := flag.Args()
	for i, path := range paths {
		start := time.Now()
		partial, err := analyze(os.Stdout, path, opts, sink)
		if opts.progress {
			fmt.Fprintf(os.Stderr, "progress: %d/%d images (%d%%)  %s done in %v\n",
				i+1, len(paths), (i+1)*100/len(paths), path, time.Since(start).Round(time.Millisecond))
		}
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "firmres: %s: %v\n", path, err)
			exit = exitFatal
			if !*keepGoing {
				return exit
			}
		case partial && exit == exitOK:
			exit = exitPartial
		}
	}
	return exit
}

// obsSink accumulates the run's observability outputs — one trace and one
// merged metrics snapshot across every analyzed image — and writes them
// when the run finishes.
type obsSink struct {
	opts       options
	trace      *firmres.Trace
	metrics    map[string]int64
	cacheStats firmres.CacheStats // accumulated across every Analyze call
}

func newObsSink(opts options) *obsSink {
	s := &obsSink{opts: opts}
	if opts.trace || opts.traceJSON != "" {
		s.trace = firmres.NewTrace()
	}
	return s
}

// options returns the analysis options the sink needs threaded into every
// Analyze call. The batch path attaches the progress reporter here (its
// total is the whole batch); the sequential path prints progress itself.
// Nil-safe: a nil sink configures nothing.
func (s *obsSink) options(batch bool) []firmres.Option {
	if s == nil {
		return nil
	}
	var out []firmres.Option
	if s.trace != nil {
		out = append(out, firmres.WithTrace(s.trace))
	}
	if s.opts.metricsPath != "" {
		out = append(out, firmres.WithMetrics())
	}
	if batch && s.opts.progress {
		out = append(out, firmres.WithProgress(os.Stderr))
	}
	if s.opts.cacheEnabled() {
		out = append(out, firmres.WithCacheStats(&s.cacheStats))
	}
	return out
}

// merge folds one report's metrics snapshot into the run aggregate.
// Nil-safe: a nil sink discards the snapshot.
func (s *obsSink) merge(m map[string]int64) {
	if s == nil {
		return
	}
	s.metrics = firmres.MergeMetrics(s.metrics, m)
}

// finish writes the collected trace and metrics to their destinations.
func (s *obsSink) finish() {
	if s.trace != nil && s.opts.trace {
		if err := s.trace.WriteTree(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "firmres: trace: %v\n", err)
		}
	}
	if s.trace != nil && s.opts.traceJSON != "" {
		if err := writeFile(s.opts.traceJSON, s.trace.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "firmres: trace-json: %v\n", err)
		}
	}
	if s.opts.metricsPath != "" {
		if s.opts.cacheEnabled() {
			s.metrics = firmres.MergeMetrics(s.metrics, s.cacheStats.Snapshot())
		}
		write := func(w io.Writer) error { return firmres.WriteMetrics(w, s.metrics) }
		if err := writeFile(s.opts.metricsPath, write); err != nil {
			fmt.Fprintf(os.Stderr, "firmres: metrics: %v\n", err)
		}
	}
}

// writeFile streams one export into a freshly created file.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runBatch analyzes every image concurrently, then renders the results in
// input order with the sequential path's exit-code and -keep-going
// semantics: a fatal image stops the output there unless -keep-going.
func runBatch(w io.Writer, paths []string, opts options, keepGoing bool, sink *obsSink) int {
	apiOpts := append(apiOptions(opts), sink.options(true)...)
	br, err := firmres.AnalyzePaths(context.Background(), paths, apiOpts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "firmres: %v\n", err)
		return exitFatal
	}
	sink.merge(br.Summary.Metrics)
	exit := exitOK
	for _, res := range br.Images {
		if errors.Is(res.Err, firmres.ErrNoDeviceCloudExecutable) {
			fmt.Fprintf(w, "%s: no device-cloud executable (script-based cloud agent?)\n", res.Path)
			continue
		}
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "firmres: %s: %v\n", res.Path, res.Err)
			exit = exitFatal
			if !keepGoing {
				return exit
			}
			continue
		}
		if partial, err := render(w, res.Path, res.Report, opts); err != nil {
			fmt.Fprintf(os.Stderr, "firmres: %s: %v\n", res.Path, err)
			exit = exitFatal
			if !keepGoing {
				return exit
			}
		} else if partial && exit == exitOK {
			exit = exitPartial
		}
	}
	if opts.timings && len(br.Summary.StageTotals) > 0 {
		fmt.Fprintf(w, "== batch stage totals (%d report(s))\n", br.Summary.Reports)
		for _, name := range firmres.StageNames() {
			fmt.Fprintf(w, "   %-24s %v\n", name, br.Summary.StageTotals[name])
		}
	}
	return exit
}

// apiOptions maps the CLI flags to analysis options.
func apiOptions(opts options) []firmres.Option {
	var apiOpts []firmres.Option
	if opts.modelPath != "" {
		apiOpts = append(apiOpts, firmres.WithModelFile(opts.modelPath))
	}
	if opts.stageTimeout > 0 {
		apiOpts = append(apiOpts, firmres.WithStageTimeout(opts.stageTimeout))
	}
	if opts.jobs != 1 {
		apiOpts = append(apiOpts, firmres.WithWorkers(opts.jobs))
	}
	if opts.lintRules != "" {
		var rules []string
		for _, r := range strings.Split(opts.lintRules, ",") {
			if r = strings.TrimSpace(r); r != "" {
				rules = append(rules, r)
			}
		}
		apiOpts = append(apiOpts, firmres.WithLintRules(rules...))
	} else if opts.lint || opts.lintJSON {
		apiOpts = append(apiOpts, firmres.WithLint())
	}
	if opts.stripped {
		apiOpts = append(apiOpts, firmres.WithStrippedMode())
	}
	if opts.cacheEnabled() {
		apiOpts = append(apiOpts, firmres.WithCache(opts.cacheDir))
		if opts.cacheMax > 0 {
			apiOpts = append(apiOpts, firmres.WithCacheMaxBytes(opts.cacheMax))
		}
	}
	if opts.probe || opts.probeChaos != "" {
		apiOpts = append(apiOpts, firmres.WithProbe())
		if opts.probeChaos != "" {
			var modes []string
			for _, m := range strings.Split(opts.probeChaos, ",") {
				if m = strings.TrimSpace(m); m != "" {
					modes = append(modes, m)
				}
			}
			apiOpts = append(apiOpts, firmres.WithProbeChaos(modes...))
		}
		if opts.probeSeed != 0 {
			apiOpts = append(apiOpts, firmres.WithProbeSeed(opts.probeSeed))
		}
		if opts.probeProbers > 0 {
			apiOpts = append(apiOpts, firmres.WithProbeProbers(opts.probeProbers))
		}
	}
	return apiOpts
}

// analyze runs one image and renders the report. It reports whether the
// analysis degraded (partial report) and any fatal error.
func analyze(w io.Writer, path string, opts options, sink *obsSink) (partial bool, err error) {
	apiOpts := append(apiOptions(opts), sink.options(false)...)
	report, err := firmres.AnalyzeFile(path, apiOpts...)
	if errors.Is(err, firmres.ErrNoDeviceCloudExecutable) {
		fmt.Fprintf(w, "%s: no device-cloud executable (script-based cloud agent?)\n", path)
		return false, nil
	}
	if err != nil {
		return false, err
	}
	sink.merge(report.Metrics)
	return render(w, path, report, opts)
}

// render prints one report in the selected output format.
func render(w io.Writer, path string, report *firmres.Report, opts options) (partial bool, err error) {
	if opts.lintJSON {
		return report.Partial(), firmres.WriteSARIF(w, report.Diagnostics)
	}
	if opts.asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return report.Partial(), enc.Encode(report)
	}
	printReport(w, path, report, opts)
	return report.Partial(), nil
}

func printReport(w io.Writer, path string, r *firmres.Report, opts options) {
	fmt.Fprintf(w, "== %s — %s (%s)\n", path, r.Device, r.Version)
	fmt.Fprintf(w, "   device-cloud executable: %s\n", r.Executable)
	if r.ClusterCounts != nil {
		fmt.Fprintf(w, "   delimiter clusters: thd0.5=%d thd0.6=%d thd0.7=%d\n",
			r.ClusterCounts["0.5"], r.ClusterCounts["0.6"], r.ClusterCounts["0.7"])
	}
	flagged := 0
	for _, m := range r.Messages {
		marker := " "
		if m.Flagged {
			marker = "!"
			flagged++
		}
		route := m.Path
		if m.Topic != "" {
			route = "topic " + m.Topic
		}
		fmt.Fprintf(w, " %s %-24s %-6s %-42s %d fields", marker, m.Function, m.Format, route, len(m.Fields))
		if m.Flagged {
			fmt.Fprintf(w, "  [%s] %s", m.Verdict, m.Detail)
		}
		if m.Discarded {
			fmt.Fprintf(w, "  [discarded] %s", m.Detail)
		}
		fmt.Fprintln(w)
		for _, f := range m.Fields {
			if f.Semantics != "" && f.Semantics != "None" {
				fmt.Fprintf(w, "       %-14s %-16s %s=%s\n", f.Semantics, f.Source, f.Key, f.Value)
			}
		}
	}
	fmt.Fprintf(w, "   %d messages reconstructed, %d flagged\n", len(r.Messages), flagged)
	if rec := r.Recovery; rec != nil {
		fmt.Fprintf(w, "   recovery (%s): %d functions, %d strings, %d/%d externs bound\n",
			rec.Binary, rec.FuncsRecovered, rec.StringsRecovered, rec.ExternsBound, rec.ExternsTotal)
		for _, b := range rec.Bindings {
			name := b.Name
			if name == "" {
				name = "(unbound)"
			}
			fmt.Fprintf(w, "     - import#%-3d %-26s conf=%.2f  %s\n", b.Import, name, b.Confidence, b.Evidence)
		}
		for _, n := range rec.Notes {
			fmt.Fprintf(w, "     note: %s\n", n)
		}
	}
	if opts.lint || opts.lintRules != "" {
		if len(r.Diagnostics) == 0 {
			fmt.Fprintf(w, "   lint: clean\n")
		} else {
			fmt.Fprintf(w, "   lint: %d finding(s)\n", len(r.Diagnostics))
			for _, d := range r.Diagnostics {
				fmt.Fprintf(w, "     - [%s] %s %s@%#x: %s\n", d.Severity, d.Rule, d.Function, d.Addr, d.Message)
				for _, ev := range d.Evidence {
					fmt.Fprintf(w, "         %s\n", ev)
				}
			}
		}
	}
	if p := r.Probe; p != nil {
		fmt.Fprintf(w, "   probe: %d probed, %d granted, %d denied, %d invalid, %d failed — %d exploitable\n",
			p.Probed, p.Counts[firmres.ProbeGranted], p.Counts[firmres.ProbeDenied],
			p.Counts[firmres.ProbeInvalid], p.Counts[firmres.ProbeFailed], p.Vulnerable)
		for _, o := range p.Outcomes {
			if o.Classification != firmres.ProbeGranted && o.ErrorKind == "" {
				continue
			}
			fmt.Fprintf(w, "     - %-24s %-5s %-42s %s", o.Function, o.Transport, o.Route, o.Classification)
			if o.ErrorKind != "" {
				fmt.Fprintf(w, " (%s)", o.ErrorKind)
			}
			fmt.Fprintln(w)
			for _, leak := range o.Leaks {
				fmt.Fprintf(w, "         %s\n", leak)
			}
		}
	}
	if opts.timings {
		fmt.Fprintf(w, "   stage timings:\n")
		for _, name := range firmres.StageNames() {
			fmt.Fprintf(w, "     %-24s %v\n", name, r.StageTimings[name])
		}
	}
	if r.Partial() {
		fmt.Fprintf(w, "   PARTIAL: %d analysis step(s) degraded:\n", len(r.Errors))
		for _, ae := range r.Errors {
			subject := ae.Stage
			if ae.Path != "" {
				subject += " " + ae.Path
			}
			fmt.Fprintf(w, "     - [%s] %s: %s\n", ae.Kind, subject, ae.Detail)
		}
	}
}
