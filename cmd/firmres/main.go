// Command firmres analyzes firmware images: it pinpoints the device-cloud
// executable, reconstructs the device-cloud messages, and prints the
// recovered fields, formats, and access-control findings.
//
// Usage:
//
//	firmres [-model file] [-json] image.img [image2.img ...]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"firmres"
)

func main() {
	modelPath := flag.String("model", "", "trained TextCNN model file (default: keyword classifier)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: firmres [-model file] [-json] image.img ...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := analyze(path, *modelPath, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "firmres: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func analyze(path, modelPath string, asJSON bool) error {
	var opts []firmres.Option
	if modelPath != "" {
		opts = append(opts, firmres.WithModelFile(modelPath))
	}
	report, err := firmres.AnalyzeFile(path, opts...)
	if errors.Is(err, firmres.ErrNoDeviceCloudExecutable) {
		fmt.Printf("%s: no device-cloud executable (script-based cloud agent?)\n", path)
		return nil
	}
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	printReport(path, report)
	return nil
}

func printReport(path string, r *firmres.Report) {
	fmt.Printf("== %s — %s (%s)\n", path, r.Device, r.Version)
	fmt.Printf("   device-cloud executable: %s\n", r.Executable)
	if r.ClusterCounts != nil {
		fmt.Printf("   delimiter clusters: thd0.5=%d thd0.6=%d thd0.7=%d\n",
			r.ClusterCounts["0.5"], r.ClusterCounts["0.6"], r.ClusterCounts["0.7"])
	}
	flagged := 0
	for _, m := range r.Messages {
		marker := " "
		if m.Flagged {
			marker = "!"
			flagged++
		}
		route := m.Path
		if m.Topic != "" {
			route = "topic " + m.Topic
		}
		fmt.Printf(" %s %-24s %-6s %-42s %d fields", marker, m.Function, m.Format, route, len(m.Fields))
		if m.Flagged {
			fmt.Printf("  [%s] %s", m.Verdict, m.Detail)
		}
		if m.Discarded {
			fmt.Printf("  [discarded] %s", m.Detail)
		}
		fmt.Println()
		for _, f := range m.Fields {
			if f.Semantics != "" && f.Semantics != "None" {
				fmt.Printf("       %-14s %-16s %s=%s\n", f.Semantics, f.Source, f.Key, f.Value)
			}
		}
	}
	fmt.Printf("   %d messages reconstructed, %d flagged\n", len(r.Messages), flagged)
}
