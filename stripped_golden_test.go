package firmres

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"firmres/internal/corpus"
)

// strippedGoldenPath is the golden file of one device's stripped-mode
// analysis, kept separate from the symbol-full goldens so the two suites
// can never overwrite each other.
func strippedGoldenPath(id int) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("stripped_device_%02d.json", id))
}

func strippedGoldenRecordFor(t *testing.T, id int) *goldenRecord {
	t.Helper()
	img, err := corpus.BuildStrippedImage(corpus.Device(id))
	if err != nil {
		t.Fatalf("BuildStrippedImage(%d): %v", id, err)
	}
	rec := &goldenRecord{Device: id}
	report, err := AnalyzeImage(img.Pack(), WithLint(), WithStrippedMode())
	switch {
	case err == nil:
		report.StageTimings = nil
		rec.Outcome = "report"
		rec.Report = report
	case errors.Is(err, ErrNoDeviceCloudExecutable):
		rec.Outcome = "no-device-cloud-executable"
	default:
		t.Fatalf("AnalyzeImage(stripped %d): %v", id, err)
	}
	return rec
}

// TestStrippedGoldenReports locks the end-to-end stripped-mode analysis for
// the whole corpus, exactly like TestGoldenReports does for symbol-full
// images. Recovered function names (fn_%06x) and extern bindings are
// deterministic, so the full report is golden-able. Regenerate with
// `go test -run TestStrippedGoldenReports -update .`.
func TestStrippedGoldenReports(t *testing.T) {
	for id := 1; id <= 22; id++ {
		id := id
		t.Run(fmt.Sprintf("device_%02d", id), func(t *testing.T) {
			if !*updateGolden {
				t.Parallel()
			}
			rec := strippedGoldenRecordFor(t, id)
			got, err := json.MarshalIndent(rec, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := strippedGoldenPath(id)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing stripped golden (run `go test -run TestStrippedGoldenReports -update .`): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("stripped report for device %d diverged from %s;\nregenerate with -update if intentional.\ngot:\n%s", id, path, clip(string(got)))
			}
		})
	}
}

// verdictProfile reduces a report to the device-level exploitability
// outcome: the sorted multiset of per-message verdicts plus the flagged
// count. Function names and field orderings differ between symbol-full and
// recovered runs by construction; the exploitability verdicts must not.
func verdictProfile(rec *goldenRecord) string {
	if rec.Outcome != "report" {
		return rec.Outcome
	}
	var vs []string
	flagged := 0
	for _, m := range rec.Report.Messages {
		vs = append(vs, m.Verdict)
		if m.Flagged {
			flagged++
		}
	}
	sort.Strings(vs)
	return fmt.Sprintf("flagged=%d verdicts=%s", flagged, strings.Join(vs, ","))
}

// TestStrippedVerdictParity is the tentpole acceptance gate: stripped-mode
// analysis must reproduce the symbol-full per-device exploitability
// verdicts for at least 20 of the 22 corpus devices, and every divergence
// must be explained by the recovery report (low-confidence bindings or
// notes) rather than silent.
func TestStrippedVerdictParity(t *testing.T) {
	matched, total := 0, 0
	for id := 1; id <= 22; id++ {
		total++
		full := goldenRecordFor(t, id)
		stripped := strippedGoldenRecordFor(t, id)
		fp, sp := verdictProfile(full), verdictProfile(stripped)
		if fp == sp {
			matched++
			continue
		}
		t.Logf("device %02d diverged:\n  symbol-full: %s\n  stripped:    %s", id, fp, sp)
		// Divergence is tolerated only when the recovery report explains it.
		if stripped.Report == nil || stripped.Report.Recovery == nil {
			t.Errorf("device %02d diverged with no recovery report to explain it", id)
			continue
		}
		rec := stripped.Report.Recovery
		explained := len(rec.Notes) > 0
		for _, b := range rec.Bindings {
			if b.Name == "" || b.Confidence < 0.2 {
				explained = true
			}
		}
		if !explained {
			t.Errorf("device %02d diverged but recovery report shows no unbound or low-confidence externs", id)
		}
	}
	t.Logf("stripped verdict parity: %d/%d devices", matched, total)
	if matched < 20 {
		t.Errorf("stripped-mode verdict parity %d/%d, need >= 20/22", matched, total)
	}
}

// TestStrippedDeterminism runs the stripped corpus twice and requires
// byte-identical reports — recovery must not leak map-iteration or
// scheduling order into bindings, notes, or messages.
func TestStrippedDeterminism(t *testing.T) {
	for id := 1; id <= 22; id++ {
		a, err := json.Marshal(strippedGoldenRecordFor(t, id))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(strippedGoldenRecordFor(t, id))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("device %02d: stripped analysis not deterministic across runs", id)
		}
	}
}
