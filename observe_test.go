package firmres

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"firmres/internal/faultinject"
	"firmres/internal/obs"
)

// spanCollector records every finished span, concurrency-safe: inner-loop
// spans end on worker-pool goroutines.
type spanCollector struct {
	mu    sync.Mutex
	spans []SpanEvent
}

func (c *spanCollector) SpanStart(SpanEvent) {}
func (c *spanCollector) SpanEnd(e SpanEvent) {
	c.mu.Lock()
	c.spans = append(c.spans, e)
	c.mu.Unlock()
}

func (c *spanCollector) names() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int)
	for _, e := range c.spans {
		out[e.Name]++
	}
	return out
}

// TestGoldenReportsTraced re-runs the 22-device corpus with every
// observability sink attached and byte-compares against the same goldens as
// the untraced run: tracing and metrics must never change what the
// analysis computes, only what it reports about itself.
func TestGoldenReportsTraced(t *testing.T) {
	for id := 1; id <= 22; id++ {
		id := id
		t.Run(fmt.Sprintf("device_%02d", id), func(t *testing.T) {
			t.Parallel()
			tr := NewTrace()
			var col spanCollector
			rec := &goldenRecord{Device: id}
			report, err := AnalyzeImage(packedDevice(t, id),
				WithLint(), WithTrace(tr), WithMetrics(), WithObserver(&col))
			switch {
			case err == nil:
				if report.Metrics == nil {
					t.Error("WithMetrics produced a nil Report.Metrics")
				}
				report.StageTimings = nil
				report.Metrics = nil // observability extras, never golden
				rec.Outcome = "report"
				rec.Report = report
			case errors.Is(err, ErrNoDeviceCloudExecutable):
				rec.Outcome = "no-device-cloud-executable"
			default:
				t.Fatalf("AnalyzeImage(%d): %v", id, err)
			}

			got, err := json.MarshalIndent(rec, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			want, err := os.ReadFile(goldenPath(id))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("traced report for device %d diverged from the untraced golden:\n%s",
					id, clip(string(got)))
			}

			// The trace must hold the image root span and render as valid
			// Chrome trace_event JSON.
			names := col.names()
			if names["image"] != 1 {
				t.Errorf("image spans = %d, want 1 (names: %v)", names["image"], names)
			}
			var buf bytes.Buffer
			if err := tr.WriteChromeTrace(&buf); err != nil {
				t.Fatalf("WriteChromeTrace: %v", err)
			}
			var parsed any
			if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
				t.Errorf("Chrome trace is not valid JSON: %v", err)
			}
		})
	}
}

// TestTraceSpansCoverEveryStage pins the span hierarchy for a device that
// exercises the full pipeline: the image root, a child per executed stage,
// and at least one inner-loop grandchild per stage that has one.
func TestTraceSpansCoverEveryStage(t *testing.T) {
	var col spanCollector
	report, err := AnalyzeImage(packedDevice(t, 17), WithLint(), WithProbe(), WithObserver(&col))
	if err != nil {
		t.Fatalf("AnalyzeImage: %v", err)
	}
	names := col.names()
	if names["image"] != 1 {
		t.Fatalf("image spans = %d, want 1", names["image"])
	}
	for stage := range report.StageTimings {
		if names[stage] != 1 {
			t.Errorf("stage %q spans = %d, want 1", stage, names[stage])
		}
	}
	for _, inner := range []string{
		"candidate",     // pinpoint-executables: per candidate file
		"taint-site",    // identify-fields: per delivery site
		"mft-simplify",  // identify-fields: per message field tree
		"classify",      // recover-semantics: per tree
		"build-message", // concatenate-fields: per tree
		"check-form",    // check-forms: per message
		"lint-fn",       // lint-passes: per function
		"probe",         // probe-replay: per message probe
	} {
		if names[inner] == 0 {
			t.Errorf("no %q inner-loop span recorded (names: %v)", inner, names)
		}
	}

	// Parentage: exactly one root, everything else links to a seen span.
	col.mu.Lock()
	defer col.mu.Unlock()
	ids := make(map[int64]bool, len(col.spans))
	roots := 0
	for _, e := range col.spans {
		ids[e.ID] = true
	}
	for _, e := range col.spans {
		if e.Parent == 0 {
			roots++
		} else if !ids[e.Parent] {
			t.Errorf("span %q has unknown parent %d", e.Name, e.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("root spans = %d, want 1", roots)
	}
}

// TestBatchMetricsDeterministicAcrossWorkers extends the batch determinism
// contract to Summary.Metrics: every counter and histogram component is
// work-derived, so the merged snapshot is identical at any worker count.
func TestBatchMetricsDeterministicAcrossWorkers(t *testing.T) {
	ids := make([]int, 0, 22)
	for id := 1; id <= 22; id++ {
		ids = append(ids, id)
	}
	imgs := packCorpus(t, ids)
	seq, err := AnalyzeImages(context.Background(), imgs,
		WithLint(), WithMetrics(), WithWorkers(1))
	if err != nil {
		t.Fatalf("AnalyzeImages(-j 1): %v", err)
	}
	par, err := AnalyzeImages(context.Background(), imgs,
		WithLint(), WithMetrics(), WithWorkers(8))
	if err != nil {
		t.Fatalf("AnalyzeImages(-j 8): %v", err)
	}
	if len(seq.Summary.Metrics) == 0 {
		t.Fatal("WithMetrics produced an empty Summary.Metrics")
	}
	if !reflect.DeepEqual(seq.Summary.Metrics, par.Summary.Metrics) {
		for k, v := range seq.Summary.Metrics {
			if pv, ok := par.Summary.Metrics[k]; !ok || pv != v {
				t.Errorf("metric %q: -j 1 = %d, -j 8 = %d (present=%v)", k, v, pv, ok)
			}
		}
		for k := range par.Summary.Metrics {
			if _, ok := seq.Summary.Metrics[k]; !ok {
				t.Errorf("metric %q only present at -j 8", k)
			}
		}
	}
}

// TestBatchStageTotals checks the summary keeps the per-stage wall-clock
// breakdown that used to be silently dropped: StageTotals must equal the
// sum of every report's StageTimings.
func TestBatchStageTotals(t *testing.T) {
	br, err := AnalyzeImages(context.Background(), packCorpus(t, []int{17, 2}), WithLint())
	if err != nil {
		t.Fatalf("AnalyzeImages: %v", err)
	}
	if len(br.Summary.StageTotals) == 0 {
		t.Fatal("Summary.StageTotals is empty")
	}
	for stage, total := range br.Summary.StageTotals {
		var want int64
		for _, res := range br.Images {
			if res.Report != nil {
				want += res.Report.StageTimings[stage].Nanoseconds()
			}
		}
		if total.Nanoseconds() != want {
			t.Errorf("StageTotals[%q] = %d ns, want %d ns", stage, total.Nanoseconds(), want)
		}
	}
}

// TestFaultInjectionCounters seeds corruption and checks both counters the
// observability layer hangs off it: the injector's own trip counter, and
// the pipeline's per-kind degradation counter in Report.Metrics.
func TestFaultInjectionCounters(t *testing.T) {
	data := packedDevice(t, 17)

	met := obs.NewMetrics()
	mode := faultinject.Modes()[0]
	if _, err := faultinject.Corrupt(data, mode, 1, faultinject.WithMetrics(met)); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	key := obs.Key("faultinject_trips_total", "mode", string(mode))
	if got := met.Snapshot()[key]; got != 1 {
		t.Errorf("%s = %d, want 1", key, got)
	}

	// Sweep modes and seeds until a corruption degrades (rather than kills)
	// the analysis, then check every recorded error shows up in the
	// errors_total counters with its kind and stage.
	degraded := 0
	for _, mode := range faultinject.Modes() {
		for seed := int64(0); seed < 4; seed++ {
			corrupted, err := faultinject.Corrupt(data, mode, seed)
			if err != nil {
				t.Fatalf("%s seed %d: Corrupt: %v", mode, seed, err)
			}
			report, err := AnalyzeImage(corrupted, WithMetrics())
			if err != nil || !report.Partial() {
				continue
			}
			degraded++
			var counted int64
			for k, v := range report.Metrics {
				if name, _ := splitMetricKey(k); name == "errors_total" {
					counted += v
				}
			}
			if counted != int64(len(report.Errors)) {
				t.Errorf("%s seed %d: errors_total sums to %d, report has %d errors\nmetrics: %v",
					mode, seed, counted, len(report.Errors), report.Metrics)
			}
		}
	}
	if degraded == 0 {
		t.Error("no corruption mode degraded the analysis; counter check never ran")
	}
}

// splitMetricKey separates a snapshot key into name and label parts.
func splitMetricKey(key string) (name, labels string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '{' {
			return key[:i], key[i:]
		}
	}
	return key, ""
}
